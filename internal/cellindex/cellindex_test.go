package cellindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdm/internal/vec"
)

func randomPositions(n int, l float64, seed int64) []vec.V {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
	}
	return pos
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 1); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := NewGrid(10, 0); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := NewGrid(10, 11); err == nil {
		t.Error("cutoff > box accepted")
	}
	g, err := NewGrid(10, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Errorf("N = %d, want 4", g.N)
	}
	if g.CellSize < 2.4 {
		t.Errorf("CellSize = %g < cutoff", g.CellSize)
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	g, _ := NewGrid(12, 2)
	for c := 0; c < g.NumCells(); c++ {
		x, y, z := g.Coords(c)
		if got := g.Index(x, y, z); got != c {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", c, x, y, z, got)
		}
	}
}

func TestCellOfWrapsPositions(t *testing.T) {
	g, _ := NewGrid(10, 2)
	inside := g.CellOf(vec.New(1, 1, 1))
	outside := g.CellOf(vec.New(11, -9, 21))
	if inside != outside {
		t.Errorf("CellOf should wrap: %d vs %d", inside, outside)
	}
}

func TestNeighbors27Distinct(t *testing.T) {
	g, _ := NewGrid(30, 3) // N = 10 >= 3
	for c := 0; c < g.NumCells(); c++ {
		nbrs := g.Neighbors(c)
		if len(nbrs) != 27 {
			t.Fatalf("cell %d: %d neighbors, want 27", c, len(nbrs))
		}
		seen := map[int]bool{}
		for _, nb := range nbrs {
			if seen[nb.Cell] {
				t.Fatalf("cell %d: duplicate neighbor cell %d", c, nb.Cell)
			}
			seen[nb.Cell] = true
		}
		if !seen[c] {
			t.Fatalf("cell %d missing itself", c)
		}
	}
}

func TestNeighborsSmallGrid(t *testing.T) {
	// N = 1: the 27 images of the single cell are distinct (cell, shift)
	// combinations.
	g, _ := NewGrid(10, 10)
	if g.N != 1 {
		t.Fatalf("N = %d", g.N)
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 27 {
		t.Fatalf("%d image neighbors, want 27", len(nbrs))
	}
	zero := 0
	for _, nb := range nbrs {
		if nb.Shift == vec.Zero {
			zero++
		}
	}
	if zero != 1 {
		t.Errorf("%d zero-shift entries, want 1", zero)
	}
}

func TestSortedLayoutContiguous(t *testing.T) {
	g, _ := NewGrid(20, 4)
	pos := randomPositions(500, 20, 1)
	s := Sort(g, pos)
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Every sorted particle must sit in the cell its range claims.
	total := 0
	for c := 0; c < g.NumCells(); c++ {
		a, b := s.CellRange(c)
		total += b - a
		for k := a; k < b; k++ {
			if got := g.CellOf(s.At(k)); got != c {
				t.Fatalf("sorted particle %d in range of cell %d but located in %d", k, c, got)
			}
		}
	}
	if total != 500 {
		t.Fatalf("ranges cover %d particles", total)
	}
	// Order must be a permutation.
	seen := make([]bool, 500)
	for _, o := range s.Order {
		if seen[o] {
			t.Fatalf("index %d appears twice in Order", o)
		}
		seen[o] = true
	}
}

func TestUnsort(t *testing.T) {
	g, _ := NewGrid(20, 4)
	pos := randomPositions(100, 20, 2)
	s := Sort(g, pos)
	dst := make([]vec.V, 100)
	s.Unsort(dst, s.Pos.AppendAoS(nil))
	for i := range pos {
		if vec.Dist(dst[i], pos[i].Wrap(20)) > 1e-12 {
			t.Fatalf("Unsort mismatch at %d: %v vs %v", i, dst[i], pos[i])
		}
	}
}

// brutePairs counts unordered pairs within rcut using the minimum image
// convention directly — the oracle for ForEachHalfPair.
func brutePairs(pos []vec.V, l, rcut float64) (count int, sumR float64) {
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			d := pos[i].Sub(pos[j]).MinImage(l).Norm()
			if d < rcut {
				count++
				sumR += d
			}
		}
	}
	return count, sumR
}

func TestHalfPairsMatchBruteForce(t *testing.T) {
	const l, rcut = 18.0, 4.5
	for seed := int64(0); seed < 5; seed++ {
		pos := randomPositions(300, l, seed)
		g, _ := NewGrid(l, rcut)
		s := Sort(g, pos)
		var count int
		var sumR float64
		s.ForEachHalfPair(rcut, func(i, j int, rij vec.V) {
			count++
			sumR += rij.Norm()
		})
		wantCount, wantSum := brutePairs(pos, l, rcut)
		if count != wantCount {
			t.Errorf("seed %d: %d pairs, brute force %d", seed, count, wantCount)
		}
		if math.Abs(sumR-wantSum) > 1e-9*wantSum {
			t.Errorf("seed %d: sum |rij| = %g, want %g", seed, sumR, wantSum)
		}
	}
}

func TestHalfPairsSmallGridMatchesBruteForce(t *testing.T) {
	// N = 2 grid exercises the image-shift deduplication logic.
	const l, rcut = 10.0, 4.9
	pos := randomPositions(120, l, 7)
	g, _ := NewGrid(l, rcut)
	if g.N != 2 {
		t.Fatalf("N = %d, want 2", g.N)
	}
	s := Sort(g, pos)
	count := 0
	s.ForEachHalfPair(rcut, func(i, j int, rij vec.V) { count++ })
	want, _ := brutePairs(pos, l, rcut)
	if count != want {
		t.Errorf("N=2 grid: %d pairs, brute force %d", count, want)
	}
}

func TestOrderedPairCount(t *testing.T) {
	const l, rcut = 20.0, 4.0
	pos := randomPositions(400, l, 3)
	g, _ := NewGrid(l, rcut)
	s := Sort(g, pos)
	visits := 0
	s.ForEachOrderedPair(func(i, j int, rij vec.V) { visits++ })
	if got := s.OrderedPairCount(); got != visits {
		t.Errorf("OrderedPairCount = %d, visits = %d", got, visits)
	}
	// Expectation: N * 27 * rho * cell³.
	rho := 400 / (l * l * l)
	want := 400 * 27 * rho * math.Pow(g.CellSize, 3)
	if math.Abs(float64(visits)-want) > 0.25*want {
		t.Errorf("ordered visits = %d, expected ≈ %g", visits, want)
	}
}

// The paper's key accounting claim (§2.2): N_int_g ≈ 13 N_int when the cell
// size is close to r_cut (27 / (2π/3) ≈ 12.9).
func TestCellIndexOverheadFactor(t *testing.T) {
	const l = 30.0
	const rcut = 3.0 // divides l exactly: cell size == rcut
	pos := randomPositions(3000, l, 4)
	g, _ := NewGrid(l, rcut)
	s := Sort(g, pos)
	ordered := s.OrderedPairCount()
	half := 0
	s.ForEachHalfPair(rcut, func(i, j int, rij vec.V) { half++ })
	ratio := float64(ordered) / float64(half)
	want := 27.0 / (2.0 * math.Pi / 3.0) // ≈ 12.89
	if math.Abs(ratio-want) > 0.15*want {
		t.Errorf("N_int_g/N_int = %g, want ≈ %g (paper: ~13)", ratio, want)
	}
}

func TestOrderedPairsIncludeSelf(t *testing.T) {
	// The hardware does not skip i == j; the kernel must kill that term.
	g, _ := NewGrid(9, 3)
	pos := []vec.V{vec.New(1, 1, 1)}
	s := Sort(g, pos)
	self := 0
	s.ForEachOrderedPair(func(i, j int, rij vec.V) {
		if i == j && rij == vec.Zero {
			self++
		}
	})
	if self != 1 {
		t.Errorf("self visits = %d, want 1", self)
	}
}

// Property: every displacement reported by ForEachHalfPair is within rcut and
// consistent with the wrapped positions.
func TestHalfPairDisplacementProperty(t *testing.T) {
	f := func(seed int64) bool {
		const l, rcut = 15.0, 3.5
		pos := randomPositions(60, l, seed)
		g, _ := NewGrid(l, rcut)
		s := Sort(g, pos)
		ok := true
		s.ForEachHalfPair(rcut, func(i, j int, rij vec.V) {
			if rij.Norm() >= rcut {
				ok = false
			}
			// rij must equal ri - rj modulo the box.
			d := s.At(i).Sub(s.At(j)).Sub(rij)
			for _, comp := range []float64{d.X, d.Y, d.Z} {
				k := comp / l
				if math.Abs(k-math.Round(k)) > 1e-9 {
					ok = false
				}
			}
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOccupancies(t *testing.T) {
	g, _ := NewGrid(12, 3)
	pos := randomPositions(256, 12, 5)
	s := Sort(g, pos)
	occ := s.Occupancies()
	if len(occ) != g.NumCells() {
		t.Fatalf("len(occ) = %d", len(occ))
	}
	sum := 0
	for i, o := range occ {
		sum += o
		if i > 0 && occ[i] < occ[i-1] {
			t.Fatal("occupancies not sorted")
		}
	}
	if sum != 256 {
		t.Errorf("occupancy sum = %d", sum)
	}
}

func BenchmarkSort(b *testing.B) {
	g, _ := NewGrid(40, 4)
	pos := randomPositions(10000, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sort(g, pos)
	}
}

func BenchmarkCellVsHalfPairs(b *testing.B) {
	const l, rcut = 24.0, 3.0
	pos := randomPositions(4000, l, 1)
	g, _ := NewGrid(l, rcut)
	s := Sort(g, pos)
	b.Run("ordered27", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			s.ForEachOrderedPair(func(i, j int, rij vec.V) { n++ })
		}
		_ = n
	})
	b.Run("halfNewton", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			s.ForEachHalfPair(rcut, func(i, j int, rij vec.V) { n++ })
		}
		_ = n
	})
}
