package cellindex

import (
	"fmt"
	"math"
	"testing"

	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// benchPositions fills a box of side l with n deterministically scattered
// particles (no RNG so every run sorts the same input).
func benchPositions(n int, l float64) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		h := float64((i*2654435761)%100003) / 100003.0
		g := float64((i*40503)%9973) / 9973.0
		pos[i] = vec.New(h*l, g*l, math.Mod(h*7+g*3, 1)*l)
	}
	return pos
}

// BenchmarkSortCrossover pins the serial/parallel crossover of the 3-phase
// counting sort: below serialSortCutoff the parallel path was measured slower
// than serial (BENCH_1 jsetBuild 0.61–0.77×), so SortPool must run those sizes
// inline. The "forced" variants bypass the cutoff to expose the raw parallel
// cost at each size.
func BenchmarkSortCrossover(b *testing.B) {
	pool := parallelize.New(4)
	for _, n := range []int{216, 1000, 2048, 8192, 32768} {
		l := 10.0 * math.Cbrt(float64(n)/216.0)
		g, err := NewGrid(l, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		pos := benchPositions(n, l)
		b.Run(fmt.Sprintf("n=%d/auto", n), func(b *testing.B) {
			so := NewSorter(g)
			var dst *Sorted
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = so.SortInto(dst, pos, pool)
			}
		})
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			so := NewSorter(g)
			var dst *Sorted
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = so.SortInto(dst, pos, nil)
			}
		})
	}
}

// TestSorterMatchesSortPool pins SortInto (with and without buffer reuse,
// above and below the serial cutoff) to the reference Sort layout.
func TestSorterMatchesSortPool(t *testing.T) {
	pool := parallelize.New(4)
	for _, n := range []int{0, 1, 216, serialSortCutoff + 100} {
		l := 10.0 * math.Cbrt(math.Max(float64(n), 1)/216.0)
		g, err := NewGrid(l, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		pos := benchPositions(n, l)
		want := Sort(g, pos)
		so := NewSorter(g)
		var got *Sorted
		for trial := 0; trial < 3; trial++ { // reuse across calls
			got = so.SortInto(got, pos, pool)
			if got.Pos.Len() != want.Pos.Len() || len(got.Start) != len(want.Start) {
				t.Fatalf("n=%d trial %d: layout size mismatch", n, trial)
			}
			for k := 0; k < want.Pos.Len(); k++ {
				if got.At(k) != want.At(k) || got.Order[k] != want.Order[k] {
					t.Fatalf("n=%d trial %d: slot %d differs", n, trial, k)
				}
			}
			for c := range want.Start {
				if got.Start[c] != want.Start[c] {
					t.Fatalf("n=%d trial %d: start %d differs", n, trial, c)
				}
			}
		}
	}
}

// TestRefreshMatchesResort checks Refresh on cell-center particles (so a
// small nudge cannot change any cell assignment): the refreshed layout must
// equal a full re-sort of the moved positions bit-for-bit.
func TestRefreshMatchesResort(t *testing.T) {
	g, err := NewGrid(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// One particle per cell center in a scrambled original order.
	n := g.NumCells()
	pos := make([]vec.V, n)
	for i := range pos {
		c := (i * 37) % n
		cx, cy, cz := g.Coords(c)
		pos[i] = vec.New(
			(float64(cx)+0.5)*g.CellSize,
			(float64(cy)+0.5)*g.CellSize,
			(float64(cz)+0.5)*g.CellSize,
		)
	}
	s := Sort(g, pos)
	moved := make([]vec.V, len(pos))
	for i, p := range pos {
		moved[i] = p.Add(vec.New(1e-3, -1e-3, 5e-4))
	}
	s.Refresh(moved)
	want := Sort(g, moved)
	for k := 0; k < want.Pos.Len(); k++ {
		if s.Order[k] != want.Order[k] {
			t.Fatalf("slot %d: order %d != %d", k, s.Order[k], want.Order[k])
		}
		if s.At(k) != want.At(k) {
			t.Fatalf("slot %d: pos %v != %v", k, s.At(k), want.At(k))
		}
	}
	for c := range want.Start {
		if s.Start[c] != want.Start[c] {
			t.Fatalf("start %d differs", c)
		}
	}
}
