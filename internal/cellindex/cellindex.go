// Package cellindex implements the cell-index (link-cell) method of Hockney
// and Eastwood used by MDGRAPE-2 to locate interacting particles (§2.2 of the
// paper).
//
// The simulation box is divided into cells at least r_cut wide; a particle
// interacts with particles in its own and the 26 surrounding cells. The
// MDGRAPE-2 board addresses particle memory through a cell-index counter and
// a particle-index counter, which requires the particles of each cell to
// occupy a contiguous index range ("We assumed that the indices of particles
// in a cell are contiguous"). Sorted reproduces exactly that memory layout:
// a permutation of the particles grouped by cell, with a start-offset table
// (the "cell memory" of Figure 9).
//
// Two pair walkers are provided:
//
//   - ForEachOrderedPair visits every (i, j) with j in the 27 neighbor cells
//     of i's cell, with no distance test and no use of Newton's third law —
//     the MDGRAPE-2 operation mode, whose operation count is N_int_g ≈ 13 N_int.
//   - ForEachHalfPair visits every unordered pair within r_cut exactly once —
//     the conventional-computer mode with Newton's third law (N_int).
package cellindex

import (
	"fmt"
	"math"
	"sort"

	"mdm/internal/parallelize"
	"mdm/internal/soa"
	"mdm/internal/vec"
)

// Grid describes the cell decomposition of a cubic periodic box.
type Grid struct {
	L        float64 // box side
	N        int     // cells per side
	CellSize float64 // L / N (>= the cutoff used to build the grid)
}

// NewGrid builds a grid for box side l with cells no smaller than rcut
// ("we set the size of a cell to a little larger than r_cut", §2.2).
// It returns an error if l or rcut is not positive or rcut > l.
func NewGrid(l, rcut float64) (*Grid, error) {
	if l <= 0 || rcut <= 0 {
		return nil, fmt.Errorf("cellindex: non-positive box %g or cutoff %g", l, rcut)
	}
	if rcut > l {
		return nil, fmt.Errorf("cellindex: cutoff %g exceeds box side %g", rcut, l)
	}
	n := int(math.Floor(l / rcut))
	if n < 1 {
		n = 1
	}
	return &Grid{L: l, N: n, CellSize: l / float64(n)}, nil
}

// NumCells returns the total number of cells N³.
func (g *Grid) NumCells() int { return g.N * g.N * g.N }

// CellCoords returns the integer cell coordinates of a position (which is
// wrapped into the box first).
func (g *Grid) CellCoords(p vec.V) (ix, iy, iz int) {
	w := p.Wrap(g.L)
	ix = g.coord1(w.X)
	iy = g.coord1(w.Y)
	iz = g.coord1(w.Z)
	return ix, iy, iz
}

func (g *Grid) coord1(x float64) int {
	i := int(x / g.CellSize)
	if i >= g.N { // x == L after rounding
		i = g.N - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Index flattens cell coordinates to a cell index in [0, NumCells).
func (g *Grid) Index(ix, iy, iz int) int {
	return (iz*g.N+iy)*g.N + ix
}

// Coords inverts Index.
func (g *Grid) Coords(c int) (ix, iy, iz int) {
	ix = c % g.N
	iy = (c / g.N) % g.N
	iz = c / (g.N * g.N)
	return ix, iy, iz
}

// CellOf returns the flat cell index of a position.
func (g *Grid) CellOf(p vec.V) int {
	ix, iy, iz := g.CellCoords(p)
	return g.Index(ix, iy, iz)
}

// Neighbor identifies one of the (up to 27) neighbor cells of a cell,
// together with the periodic image shift that must be added to the positions
// of its particles when computing displacements.
type Neighbor struct {
	Cell  int
	Shift vec.V
}

// Neighbors returns the neighbor cells of cell c, including c itself.
// For grids with N >= 3 the result always has exactly 27 distinct entries.
// For smaller grids the same cell can appear several times with different
// image shifts; entries are deduplicated by (cell, shift) so each physical
// image is visited exactly once.
func (g *Grid) Neighbors(c int) []Neighbor {
	cx, cy, cz := g.Coords(c)
	out := make([]Neighbor, 0, 27)
	seen := make(map[[4]int]bool, 27)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, sx := wrapCell(cx+dx, g.N)
				ny, sy := wrapCell(cy+dy, g.N)
				nz, sz := wrapCell(cz+dz, g.N)
				key := [4]int{g.Index(nx, ny, nz), sx, sy, sz}
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, Neighbor{
					Cell:  key[0],
					Shift: vec.New(float64(sx)*g.L, float64(sy)*g.L, float64(sz)*g.L),
				})
			}
		}
	}
	return out
}

// NeighborTable caches Neighbors(c) for every cell of a grid — the "cell
// memory" contents the board FPGA computes once per grid geometry rather
// than once per particle. Enumerating neighbors through the table returns
// the exact slices Neighbors would, in the same order, without the per-call
// allocation and dedup work.
type NeighborTable struct {
	g     *Grid
	lists [][]Neighbor
}

// BuildNeighborTable enumerates every cell's neighbors, striping the cells
// across the pool's workers (a nil pool is serial; each cell's list is
// written by exactly one worker, so the table is identical at any width).
// Small grids run serially: below serialCellsCutoff cells the per-shard
// goroutine handoff costs more than the enumeration itself.
func BuildNeighborTable(g *Grid, pool *parallelize.Pool) *NeighborTable {
	if g.NumCells() < serialCellsCutoff {
		pool = nil
	}
	t := &NeighborTable{g: g, lists: make([][]Neighbor, g.NumCells())}
	_ = pool.Run(g.NumCells(), func(_, lo, hi int) error {
		for c := lo; c < hi; c++ {
			t.lists[c] = g.Neighbors(c)
		}
		return nil
	})
	return t
}

// Grid returns the grid the table was built for.
func (t *NeighborTable) Grid() *Grid { return t.g }

// Of returns the cached neighbor list of cell c. The caller must not modify
// the returned slice.
func (t *NeighborTable) Of(c int) []Neighbor { return t.lists[c] }

// wrapCell wraps a cell coordinate into [0, n) and returns the image shift in
// whole boxes (-1, 0 or +1).
func wrapCell(i, n int) (wrapped, shift int) {
	if i < 0 {
		return i + n, -1
	}
	if i >= n {
		return i - n, +1
	}
	return i, 0
}

// Sorted is the contiguous-per-cell particle layout: the paper's particle
// memory plus cell memory. Positions are wrapped into the box and stored as
// structure-of-arrays planes — the flat banked j-particle memory the board
// streams (§3.3) — with a float32 mirror for the single-precision pipelines
// (one narrowing per particle per rebuild instead of one per visited pair).
type Sorted struct {
	Grid  *Grid
	Pos   soa.Coords   // positions in sorted order, wrapped into [0, L)³
	P32   soa.Coords32 // float32(Pos) mirror, maintained by SortInto/Refresh
	Order []int        // Order[k] = original index of sorted particle k
	Start []int        // len NumCells+1; cell c owns sorted indices [Start[c], Start[c+1])
}

// At returns sorted position k as a vector.
func (s *Sorted) At(k int) vec.V { return s.Pos.At(k) }

// Sort builds the sorted layout for the given positions.
func Sort(g *Grid, pos []vec.V) *Sorted {
	return SortPool(g, pos, nil)
}

// Serial cutoffs for the parallel phases. BENCH_1 measured the 3-phase
// parallel counting sort at 0.61–0.77× serial speed for the 216-particle
// NaCl cell at widths 2–8: below a few thousand elements the goroutine
// handoff and per-shard count tables dominate the O(n) scan they split.
// The crossover benchmark (BenchmarkSortCrossover) pins the threshold.
const (
	serialSortCutoff  = 2048 // particles below which SortPool runs serially
	serialCellsCutoff = 1024 // cells below which BuildNeighborTable runs serially
)

// SortPool builds the sorted layout with the cell assignment and scatter
// phases striped across the pool's workers (a nil pool is serial). The
// layout is bit-identical to Sort at any pool width: shards are contiguous
// original-index ranges and each shard scatters into slots reserved for it
// by a deterministic per-shard/per-cell prefix sum, so within every cell the
// particles appear in ascending original index exactly as in the serial
// counting sort. Inputs below serialSortCutoff run serially regardless of
// pool width (same layout, cheaper).
func SortPool(g *Grid, pos []vec.V, pool *parallelize.Pool) *Sorted {
	return NewSorter(g).SortInto(nil, pos, pool)
}

// Sorter owns the scratch state of the counting sort (cell assignments,
// per-shard count and scatter-base tables) so repeated sorts over the same
// grid allocate nothing. One Sorter serves one caller at a time.
type Sorter struct {
	g      *Grid
	cells  []int
	counts [][]int
	base   [][]int
}

// NewSorter returns a reusable sorter for the grid.
func NewSorter(g *Grid) *Sorter { return &Sorter{g: g} }

// Grid returns the grid the sorter sorts into.
func (so *Sorter) Grid() *Grid { return so.g }

// SortInto builds the sorted layout for pos into dst, reusing dst's buffers
// when their lengths match (a nil dst allocates a fresh Sorted). The layout
// is the same bit-identical counting sort as SortPool at every pool width,
// including the small-n serial cutoff.
func (so *Sorter) SortInto(dst *Sorted, pos []vec.V, pool *parallelize.Pool) *Sorted {
	g := so.g
	n := len(pos)
	nc := g.NumCells()
	if dst == nil {
		dst = &Sorted{}
	}
	dst.Grid = g
	if dst.Pos.Len() != n {
		dst.Pos = dst.Pos.Resize(n)
		dst.P32 = dst.P32.Resize(n)
	}
	if len(dst.Order) != n || len(dst.Start) != nc+1 {
		// One slab carved into both index tables; the capped slices keep the
		// planes independent (an append can never cross into the neighbor).
		s := make([]int, n+nc+1)
		dst.Order = s[0:n:n]
		dst.Start = s[n : n+nc+1 : n+nc+1]
	}
	if n < serialSortCutoff {
		pool = nil
	}
	shards := parallelize.Shards(n, pool.Workers())
	if len(so.cells) < n {
		so.cells = make([]int, n)
	}
	cells := so.cells[:n]
	for len(so.counts) < len(shards) {
		//mdm:hotallocok -- amortized scratch growth: grows to the worker count once, then reuses across sorts
		so.counts = append(so.counts, nil)
		//mdm:hotallocok -- amortized scratch growth: grows to the worker count once, then reuses across sorts
		so.base = append(so.base, nil)
	}
	counts := so.counts[:len(shards)]
	base := so.base[:len(shards)]
	for sh := range counts {
		if len(counts[sh]) != nc {
			counts[sh] = make([]int, nc)
			base[sh] = make([]int, nc)
		}
	}
	// Phase 1: cell assignment, one count table per shard (zeroed in-shard so
	// table reuse across calls is invisible).
	_ = pool.Run(n, func(shard, lo, hi int) error {
		cnt := counts[shard]
		for c := range cnt {
			cnt[c] = 0
		}
		for i := lo; i < hi; i++ {
			c := g.CellOf(pos[i])
			cells[i] = c
			cnt[c]++
		}
		return nil
	})
	// Phase 2 (serial): global cell offsets, then per-shard scatter bases —
	// shard s writes cell c starting at Start[c] + Σ_{t<s} counts[t][c].
	for c, k := 0, 0; c < nc; c++ {
		dst.Start[c] = k
		for _, cnt := range counts {
			k += cnt[c]
		}
	}
	dst.Start[nc] = n
	if len(shards) > 0 {
		copy(base[0], dst.Start[:nc])
		for sh := 1; sh < len(shards); sh++ {
			prev, cnt, b := base[sh-1], counts[sh-1], base[sh]
			for c := 0; c < nc; c++ {
				b[c] = prev[c] + cnt[c]
			}
		}
	}
	// Phase 3: scatter. Slot ranges of different shards are disjoint.
	_ = pool.Run(n, func(shard, lo, hi int) error {
		fill := base[shard]
		for i := lo; i < hi; i++ {
			c := cells[i]
			k := fill[c]
			fill[c]++
			w := pos[i].Wrap(g.L)
			dst.Pos.Set(k, w)
			dst.P32.Set(k, w)
			dst.Order[k] = i
		}
		return nil
	})
	return dst
}

// Len returns the number of particles.
func (s *Sorted) Len() int { return s.Pos.Len() }

// CellRange returns the half-open sorted-index range of cell c — the paper's
// (jstart_c, jend_c) pair as read from the board's cell memory.
func (s *Sorted) CellRange(c int) (jstart, jend int) {
	return s.Start[c], s.Start[c+1]
}

// Unsort scatters values indexed in sorted order back to original particle
// order: dst[Order[k]] = src[k]. dst and src must have the same length as the
// particle count.
func (s *Sorted) Unsort(dst, src []vec.V) {
	for k, orig := range s.Order {
		dst[orig] = src[k]
	}
}

// Refresh rewrites the sorted positions from the current original-order
// positions without re-sorting: Pos[k] = pos[Order[k]] wrapped into the box.
// The cell assignment (Order, Start) is left as built, so the layout is valid
// as long as no particle has left the shell its cell size allows for — the
// Verlet-skin reuse contract (rebuild when max displacement exceeds skin/2).
// pos must have the same length as the sorted layout.
func (s *Sorted) Refresh(pos []vec.V) {
	l := s.Grid.L
	for k, orig := range s.Order {
		w := pos[orig].Wrap(l)
		s.Pos.Set(k, w)
		s.P32.Set(k, w)
	}
}

// ForEachOrderedPair visits, for every sorted particle i, every sorted
// particle j in the 27 neighbor cells of i's cell (including i's own cell and
// including j == i), passing the displacement rij = ri - (rj + shift).
// No distance test is applied — this is exactly the MDGRAPE-2 operation mode
// (§2.2): the pipeline evaluates all N_int_g candidates and relies on the
// force kernel vanishing beyond the cutoff. The visit order is deterministic.
func (s *Sorted) ForEachOrderedPair(f func(i, j int, rij vec.V)) {
	s.forEachOrderedPair(nil, f)
}

// ForEachOrderedPairTable is ForEachOrderedPair drawing each cell's neighbor
// list from a prebuilt table instead of enumerating it — the same visit
// order without the per-cell allocation. The table must belong to s.Grid's
// geometry.
func (s *Sorted) ForEachOrderedPairTable(nbt *NeighborTable, f func(i, j int, rij vec.V)) {
	s.forEachOrderedPair(nbt, f)
}

func (s *Sorted) forEachOrderedPair(nbt *NeighborTable, f func(i, j int, rij vec.V)) {
	g := s.Grid
	for c := 0; c < g.NumCells(); c++ {
		is, ie := s.CellRange(c)
		if is == ie {
			continue
		}
		var nbrs []Neighbor
		if nbt != nil {
			nbrs = nbt.Of(c)
		} else {
			nbrs = g.Neighbors(c)
		}
		for i := is; i < ie; i++ {
			ri := s.Pos.At(i)
			for _, nb := range nbrs {
				js, je := s.CellRange(nb.Cell)
				for j := js; j < je; j++ {
					rij := ri.Sub(s.Pos.At(j).Add(nb.Shift))
					f(i, j, rij)
				}
			}
		}
	}
}

// OrderedPairCount returns the number of (i, j) visits ForEachOrderedPair
// makes; it equals N · N_int_g in the paper's notation.
func (s *Sorted) OrderedPairCount() int {
	count := 0
	g := s.Grid
	for c := 0; c < g.NumCells(); c++ {
		is, ie := s.CellRange(c)
		ni := ie - is
		if ni == 0 {
			continue
		}
		nj := 0
		for _, nb := range g.Neighbors(c) {
			js, je := s.CellRange(nb.Cell)
			nj += je - js
		}
		count += ni * nj
	}
	return count
}

// ForEachHalfPair visits every unordered pair (i < j in visit semantics) with
// minimum-image distance below rcut exactly once, passing rij = ri - rj
// (image-corrected). This is the conventional-computer mode using Newton's
// third law (operation count N · N_int). rcut must not exceed the grid cell
// size times one (the grid guarantees this when built with the same cutoff).
func (s *Sorted) ForEachHalfPair(rcut float64, f func(i, j int, rij vec.V)) {
	g := s.Grid
	r2 := rcut * rcut
	for c := 0; c < g.NumCells(); c++ {
		is, ie := s.CellRange(c)
		if is == ie {
			continue
		}
		for _, nb := range g.Neighbors(c) {
			js, je := s.CellRange(nb.Cell)
			for i := is; i < ie; i++ {
				ri := s.Pos.At(i)
				for j := js; j < je; j++ {
					// Visit each unordered pair once: within the same image
					// of the same cell use j > i; across cells/images use a
					// canonical ordering on (cell, shift, index).
					if nb.Cell == c && nb.Shift == vec.Zero {
						if j <= i {
							continue
						}
					} else if !canonical(c, nb, i, j) {
						continue
					}
					rij := ri.Sub(s.Pos.At(j).Add(nb.Shift))
					if rij.Norm2() < r2 {
						f(i, j, rij)
					}
				}
			}
		}
	}
}

// canonical decides which of the two directed visits of a cross-cell pair is
// kept. Pairs between cell c and neighbor nb are seen twice (once from each
// side, with opposite shifts); keep the visit with the lexicographically
// smaller (cell, -shift…) key, breaking exact self-image ties by index.
func canonical(c int, nb Neighbor, i, j int) bool {
	if c != nb.Cell {
		return c < nb.Cell
	}
	// Same cell seen through a non-zero image shift S: the pair is also
	// visited from the other side with shift -S. Keep the visit whose first
	// non-zero shift component is positive.
	switch {
	case nb.Shift.X != 0:
		return nb.Shift.X > 0
	case nb.Shift.Y != 0:
		return nb.Shift.Y > 0
	case nb.Shift.Z != 0:
		return nb.Shift.Z > 0
	}
	// Unreachable for ForEachHalfPair (the zero-shift same-cell case is
	// handled by the j > i test), but keep a sane default.
	return i < j
}

// Occupancies returns the sorted list of per-cell particle counts; useful for
// diagnostics and load-balance tests.
func (s *Sorted) Occupancies() []int {
	occ := make([]int, s.Grid.NumCells())
	for c := range occ {
		a, b := s.CellRange(c)
		occ[c] = b - a
	}
	sort.Ints(occ)
	return occ
}
