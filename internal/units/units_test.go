package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoulombConstant(t *testing.T) {
	// e²/(4πε0) in SI, converted to eV·Å.
	const (
		e    = 1.602176634e-19 // C
		eps0 = 8.8541878128e-12
	)
	want := e * e / (4 * math.Pi * eps0) * JToEV * 1e10 // J·m → eV·Å
	if math.Abs(Coulomb-want)/want > 1e-9 {
		t.Errorf("Coulomb = %v, want %v", Coulomb, want)
	}
}

func TestForceToAccel(t *testing.T) {
	// 1 eV/Å acting on 1 amu: a = F/m in SI, converted to Å/fs².
	const (
		eV  = 1.602176634e-19   // J
		amu = 1.66053906892e-27 // kg
	)
	aSI := (eV / 1e-10) / amu // m/s²
	want := aSI * 1e10 / 1e30 // Å/fs²
	if math.Abs(ForceToAccel-want)/want > 1e-6 {
		t.Errorf("ForceToAccel = %v, want %v", ForceToAccel, want)
	}
}

func TestKineticTemperatureRoundTrip(t *testing.T) {
	f := func(tK float64, n int) bool {
		tK = math.Abs(math.Mod(tK, 1e4))
		if n < 0 {
			n = -n
		}
		n = n%100000 + 1
		ke := KelvinToKinetic(tK, n)
		back := KineticToKelvin(ke, n)
		return math.Abs(back-tK) <= 1e-9*(1+tK)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKineticToKelvinDegenerate(t *testing.T) {
	if got := KineticToKelvin(1.0, 0); got != 0 {
		t.Errorf("n=0: got %g", got)
	}
	if got := KineticToKelvin(1.0, -5); got != 0 {
		t.Errorf("n<0: got %g", got)
	}
}

func TestThermalSpeedMagnitude(t *testing.T) {
	// Na at 1200 K: v = sqrt(3 k_B T / m). Expect on the order of 1e-2 Å/fs
	// (≈ 1000 m/s), a well-known molten-salt scale.
	v := ThermalSpeed(1200, MassNa)
	if v < 5e-3 || v > 5e-2 {
		t.Errorf("ThermalSpeed(1200K, Na) = %g Å/fs, outside plausible range", v)
	}
	// v in m/s:
	ms := v * 1e-10 / 1e-15
	if ms < 500 || ms > 5000 {
		t.Errorf("thermal speed = %g m/s, implausible", ms)
	}
}

func TestThermalSpeedDegenerate(t *testing.T) {
	if ThermalSpeed(0, MassNa) != 0 || ThermalSpeed(300, 0) != 0 || ThermalSpeed(-10, MassNa) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(1.01, 1.0, 0); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("RelativeError = %g", got)
	}
	if got := RelativeError(1e-20, 0, 1e-10); math.Abs(got-1e-10) > 1e-18 {
		t.Errorf("floored RelativeError = %g, want 1e-10", got)
	}
	if got := RelativeError(0, 0, 0); got != 0 {
		t.Errorf("0/0 RelativeError = %g", got)
	}
	if got := RelativeError(1, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("1/0 RelativeError = %g, want +Inf", got)
	}
}

func TestKineticConsistentWithEquipartition(t *testing.T) {
	// 2 particles at 300 K hold 3 k_B T of kinetic energy.
	ke := KelvinToKinetic(300, 2)
	want := 3 * Boltzmann * 300
	if math.Abs(ke-want) > 1e-15 {
		t.Errorf("ke = %g, want %g", ke, want)
	}
}
