// Package units defines the unit system and physical constants used by the
// MDM reproduction.
//
// We use "metal-like" molecular-dynamics units, matching the scales quoted in
// the paper (Å box sides, fs time-steps, Kelvin temperatures):
//
//	length      Å (ångström)
//	time        fs (femtosecond)
//	energy      eV (electron-volt)
//	charge      e (elementary charge)
//	mass        amu (unified atomic mass unit)
//	temperature K (kelvin)
//
// In this system forces are eV/Å and the Coulomb energy between two unit
// charges at 1 Å is Coulomb (≈14.4 eV).
package units

import "math"

// Physical constants in the package unit system.
const (
	// Coulomb is the Coulomb constant 1/(4 π ε0) in eV·Å/e².
	Coulomb = 14.399645478425668

	// Boltzmann is k_B in eV/K.
	Boltzmann = 8.617333262e-5

	// ForceToAccel converts a force/mass ratio of 1 (eV/Å)/amu into an
	// acceleration in Å/fs².
	ForceToAccel = 9.648533212331e-3

	// JToEV converts joules to electron-volts.
	JToEV = 1.0 / 1.602176634e-19

	// M6ToA6 converts m⁶ to Å⁶ (for dispersion coefficients quoted in J·m⁶).
	M6ToA6 = 1e60

	// M8ToA8 converts m⁸ to Å⁸.
	M8ToA8 = 1e80

	// EVPerA3ToGPa converts a pressure from eV/Å³ to gigapascal.
	EVPerA3ToGPa = 160.21766208
)

// Atomic masses in amu for the species used in the paper's simulations.
const (
	MassNa = 22.98976928
	MassCl = 35.453
)

// KineticToKelvin converts a total kinetic energy (eV) of n point particles
// into an instantaneous temperature via KE = (3/2) n k_B T.
// It returns 0 for n <= 0.
func KineticToKelvin(ke float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return 2 * ke / (3 * float64(n) * Boltzmann)
}

// KelvinToKinetic is the inverse of KineticToKelvin: the kinetic energy (eV)
// of n particles at temperature t (K).
func KelvinToKinetic(t float64, n int) float64 {
	return 1.5 * float64(n) * Boltzmann * t
}

// ThermalSpeed returns the RMS speed (Å/fs) of a particle of mass m (amu) at
// temperature t (K): v = sqrt(3 k_B T / m) with the eV→(Å/fs)² conversion.
func ThermalSpeed(t, m float64) float64 {
	if m <= 0 || t <= 0 {
		return 0
	}
	// v² [ (Å/fs)² ] = 3 k_B T [eV] / m [amu] × ForceToAccel [ (Å/fs²)·amu/(eV/Å) ]
	// (eV/amu → (Å/fs)² carries the same conversion factor as (eV/Å)/amu → Å/fs².)
	return math.Sqrt(3 * Boltzmann * t / m * ForceToAccel)
}

// RelativeError returns |got-want| / max(|want|, floor). It is the error
// measure used throughout the accuracy experiments (§3.4.4, §3.5.4 of the
// paper): relative to the reference magnitude with a floor to avoid dividing
// by a vanishing reference.
func RelativeError(got, want, floor float64) float64 {
	d := math.Abs(got - want)
	m := math.Abs(want)
	if m < floor {
		m = floor
	}
	if m == 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d / m
}
