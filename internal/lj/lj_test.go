package lj

import (
	"math"
	"testing"
	"testing/quick"

	"mdm/internal/vec"
)

func TestNewCoeffsValidation(t *testing.T) {
	if _, err := NewCoeffs(0); err == nil {
		t.Error("0 types accepted")
	}
	if _, err := NewCoeffs(33); err == nil {
		t.Error("33 types accepted (RAM holds 32)")
	}
	c, err := NewCoeffs(32)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTypes() != 32 {
		t.Errorf("NumTypes = %d", c.NumTypes())
	}
}

func TestSetSymmetric(t *testing.T) {
	c, _ := NewCoeffs(3)
	c.Set(0, 2, 1.5, 3.0)
	if c.Eps[2][0] != 1.5 || c.Sigma[2][0] != 3.0 {
		t.Error("Set not symmetric")
	}
}

func TestGKernel(t *testing.T) {
	if G(0) != 0 || G(-1) != 0 {
		t.Error("G at non-positive x should be 0")
	}
	if got := G(1); got != 1 {
		t.Errorf("G(1) = %g, want 2-1 = 1", got)
	}
	// Zero crossing at x = 2^(1/3).
	x0 := math.Pow(2, 1.0/3.0)
	if math.Abs(G(x0)) > 1e-12 {
		t.Errorf("G(2^(1/3)) = %g, want 0", G(x0))
	}
}

func TestForceMatchesPaperForm(t *testing.T) {
	c, _ := NewCoeffs(1)
	const eps, sigma = 0.4, 2.5
	c.Set(0, 0, eps, sigma)
	for _, r := range []float64{2.0, 2.5, 2.8, 3.5, 5.0} {
		rij := vec.New(r, 0, 0)
		f := c.Force(0, 0, rij)
		sr := sigma / r
		want := eps * (2*math.Pow(sr, 14) - math.Pow(sr, 8)) * r // x component
		if math.Abs(f.X-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("r=%g: F_x = %g, eq.4 gives %g", r, f.X, want)
		}
		if f.Y != 0 || f.Z != 0 {
			t.Errorf("r=%g: transverse force %v", r, f)
		}
	}
}

func TestForceIsEnergyGradient(t *testing.T) {
	c, _ := NewCoeffs(2)
	c.Set(0, 1, 0.25, 3.2)
	const h = 1e-6
	for _, r := range []float64{2.8, 3.2, 3.6, 4.5, 6.0} {
		grad := (c.Energy(0, 1, r+h) - c.Energy(0, 1, r-h)) / (2 * h)
		want := -grad / r // ForceScalar is F_radial / r
		got := c.ForceScalar(0, 1, r*r)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("r=%g: scalar = %g, -φ'/r = %g", r, got, want)
		}
	}
}

func TestMinimumDistance(t *testing.T) {
	c, _ := NewCoeffs(1)
	c.Set(0, 0, 1.0, 3.0)
	r0 := c.MinimumDistance(0, 0)
	if math.Abs(r0-math.Pow(2, 1.0/6.0)*3.0) > 1e-12 {
		t.Errorf("r0 = %g", r0)
	}
	// Force vanishes there.
	if f := c.ForceScalar(0, 0, r0*r0); math.Abs(f) > 1e-12 {
		t.Errorf("force at minimum = %g", f)
	}
	// Energy is the well minimum: lower than neighbors.
	e0 := c.Energy(0, 0, r0)
	if c.Energy(0, 0, r0*0.95) <= e0 || c.Energy(0, 0, r0*1.05) <= e0 {
		t.Error("energy not minimal at r0")
	}
}

// Property: force is repulsive inside r0 and attractive outside.
func TestForceSignProperty(t *testing.T) {
	c, _ := NewCoeffs(1)
	c.Set(0, 0, 0.7, 2.9)
	r0 := c.MinimumDistance(0, 0)
	f := func(u float64) bool {
		u = math.Abs(math.Mod(u, 3)) + 0.1 // r in [0.29, 9] σ-ish
		r := u * 2.9
		s := c.ForceScalar(0, 0, r*r)
		if r < r0 {
			return s > 0
		}
		return s <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAtContact(t *testing.T) {
	c, _ := NewCoeffs(1)
	c.Set(0, 0, 1, 1)
	if !math.IsInf(c.Energy(0, 0, 0), 1) {
		t.Error("energy at r=0 should be +Inf")
	}
	if c.Force(0, 0, vec.Zero) != vec.Zero {
		t.Error("force at zero displacement should be zero")
	}
}

func BenchmarkForceScalar(b *testing.B) {
	c, _ := NewCoeffs(2)
	c.Set(0, 1, 0.3, 3.1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = c.ForceScalar(0, 1, 6.0+float64(i%64)*0.1)
	}
	_ = sink
}
