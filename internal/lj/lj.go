// Package lj implements the Lennard-Jones van der Waals interaction in the
// exact form of the paper's eq. 4:
//
//	F⃗_i(vdW) = Σ_j ε(at_i,at_j) { 2 [σ/r]¹⁴ - [σ/r]⁸ } r⃗_ij
//
// which derives from the pair potential φ(r) = (ε σ²/6) [(σ/r)¹² - (σ/r)⁶]
// (the paper's ε therefore carries units of energy/length²). On MDGRAPE-2
// this kernel is loaded as g(x) = 2x⁻⁷ - x⁻⁴ with a_ij = σ⁻² and b_ij = ε
// (§3.5.4).
package lj

import (
	"fmt"
	"math"

	"mdm/internal/vec"
)

// Coeffs holds the per-type-pair parameter tables, mirroring the MDGRAPE-2
// atom-coefficient RAM (up to 32 particle types, §3.5.3).
type Coeffs struct {
	Eps   [][]float64 // ε(at_i, at_j), eV/Å²
	Sigma [][]float64 // σ(at_i, at_j), Å
}

// MaxTypes is the particle-type capacity of the MDGRAPE-2 coefficient RAM.
const MaxTypes = 32

// NewCoeffs allocates symmetric zero tables for n types.
func NewCoeffs(n int) (*Coeffs, error) {
	if n < 1 || n > MaxTypes {
		return nil, fmt.Errorf("lj: %d types outside [1, %d]", n, MaxTypes)
	}
	c := &Coeffs{Eps: make([][]float64, n), Sigma: make([][]float64, n)}
	for i := range c.Eps {
		c.Eps[i] = make([]float64, n)
		c.Sigma[i] = make([]float64, n)
	}
	return c, nil
}

// Set assigns the symmetric pair parameters for types i and j.
func (c *Coeffs) Set(i, j int, eps, sigma float64) {
	c.Eps[i][j], c.Eps[j][i] = eps, eps
	c.Sigma[i][j], c.Sigma[j][i] = sigma, sigma
}

// NumTypes returns the number of particle types.
func (c *Coeffs) NumTypes() int { return len(c.Eps) }

// G is the MDGRAPE-2 central-force kernel for the paper's vdW form:
// g(x) = 2x⁻⁷ - x⁻⁴, to be used with a_ij = σ⁻² and b_ij = ε.
func G(x float64) float64 {
	if x <= 0 {
		return 0
	}
	x2 := x * x
	x4 := x2 * x2
	return 2/(x4*x2*x) - 1/x4
}

// ForceScalar returns the factor multiplying r⃗_ij in eq. 4 for types (i, j)
// at squared separation r2: ε { 2 (σ²/r²)⁷ - (σ²/r²)⁴ }.
func (c *Coeffs) ForceScalar(ti, tj int, r2 float64) float64 {
	if r2 <= 0 {
		return 0
	}
	sg := c.Sigma[ti][tj]
	return c.Eps[ti][tj] * G(r2/(sg*sg))
}

// Force returns the vdW pair force on particle i given rij = ri - rj.
func (c *Coeffs) Force(ti, tj int, rij vec.V) vec.V {
	return rij.Scale(c.ForceScalar(ti, tj, rij.Norm2()))
}

// Energy returns the pair potential φ(r) = (ε σ²/6) [(σ/r)¹² - (σ/r)⁶]
// consistent with eq. 4 (F = -∇φ).
func (c *Coeffs) Energy(ti, tj int, r float64) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	sg := c.Sigma[ti][tj]
	sr := sg / r
	sr2 := sr * sr
	sr6 := sr2 * sr2 * sr2
	return c.Eps[ti][tj] * sg * sg / 6 * (sr6*sr6 - sr6)
}

// MinimumDistance returns the separation at which the pair force vanishes,
// r = 2^(1/6) σ.
func (c *Coeffs) MinimumDistance(ti, tj int) float64 {
	return math.Pow(2, 1.0/6.0) * c.Sigma[ti][tj]
}
