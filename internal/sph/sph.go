// Package sph implements smoothed particle hydrodynamics on the simulated
// MDGRAPE-2 — one of the "other applications" the paper lists for the MDM
// (§6.4, citing the GRAPE SPH work of Umemura [19] and Steinmetz [20]).
//
// SPH maps perfectly onto the machine's central-force architecture:
//
//   - the density estimate ρ_i = Σ_j m_j W(r_ij) is a scalar pair sum — the
//     hardware's potential mode with the kernel W as the φ table and the
//     particle masses in the per-particle charge field;
//   - the symmetric pressure acceleration
//     a⃗_i = -Σ_j m_j (P_i/ρ_i² + P_j/ρ_j²) ∇W(r_ij)
//     splits into two force passes: one with the host scale carrying
//     P_i/ρ_i², one with the charge field carrying m_j·P_j/ρ_j².
//
// The smoothing kernel is the 3-D Gaussian W(r) = exp(-r²/h²)/(π^(3/2) h³),
// whose infinite smoothness suits the segmented polynomial evaluator; the
// cell grid truncates it at 3h where it has decayed to ~1e-4.
package sph

import (
	"fmt"
	"math"

	"mdm/internal/cellindex"
	"mdm/internal/mdgrape2"
	"mdm/internal/vec"
)

// Table names in the function-evaluator RAM.
const (
	tableW     = "sph-kernel"      // φ(x) = e^-x (density mode)
	tableGradW = "sph-kernel-grad" // g(x) = e^-x (force mode, shape only)
)

// Fluid is an isothermal SPH fluid in a periodic cubic box: the equation of
// state is P = c²ρ.
type Fluid struct {
	L          float64 // box side
	H          float64 // smoothing length
	SoundSpeed float64 // isothermal sound speed c

	Pos  []vec.V
	Vel  []vec.V
	Mass []float64

	sys   *mdgrape2.System
	grid  *cellindex.Grid
	sigma float64 // kernel normalization 1/(π^(3/2) h³)
}

// NewFluid builds a fluid and loads the kernel tables into a simulated
// MDGRAPE-2 of the given configuration.
func NewFluid(cfg mdgrape2.Config, l, h, c float64, pos []vec.V, mass []float64) (*Fluid, error) {
	if l <= 0 || h <= 0 || c <= 0 {
		return nil, fmt.Errorf("sph: non-positive box %g, smoothing %g or sound speed %g", l, h, c)
	}
	if 3*h > l/2 {
		return nil, fmt.Errorf("sph: smoothing length %g too large for box %g (need 3h <= L/2)", h, l)
	}
	if len(pos) != len(mass) {
		return nil, fmt.Errorf("sph: %d positions vs %d masses", len(pos), len(mass))
	}
	for i, m := range mass {
		if m <= 0 {
			return nil, fmt.Errorf("sph: particle %d has non-positive mass %g", i, m)
		}
	}
	sys, err := mdgrape2.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	// e^-x over x in [2^-16, 2^16): covers r from h/256 to far past the
	// 3h truncation.
	if err := sys.LoadTable(tableW, func(x float64) float64 { return math.Exp(-x) }, -16, 16); err != nil {
		return nil, err
	}
	if err := sys.LoadTable(tableGradW, func(x float64) float64 { return math.Exp(-x) }, -16, 16); err != nil {
		return nil, err
	}
	grid, err := cellindex.NewGrid(l, 3*h)
	if err != nil {
		return nil, err
	}
	f := &Fluid{
		L:          l,
		H:          h,
		SoundSpeed: c,
		Pos:        append([]vec.V(nil), pos...),
		Vel:        make([]vec.V, len(pos)),
		Mass:       append([]float64(nil), mass...),
		sys:        sys,
		grid:       grid,
		sigma:      1 / (math.Pow(math.Pi, 1.5) * h * h * h),
	}
	return f, nil
}

// N returns the particle count.
func (f *Fluid) N() int { return len(f.Pos) }

// Stats exposes the pipeline work counters.
func (f *Fluid) Stats() mdgrape2.Stats { return f.sys.Stats() }

// types returns the all-zero type slice (one fluid species).
func (f *Fluid) types() []int { return make([]int, f.N()) }

// jset builds the board memory image with the masses (or a derived per-
// particle quantity) in the charge field.
func (f *Fluid) jset(weights []float64) (*mdgrape2.JSet, error) {
	return mdgrape2.NewJSetWeighted(f.grid, f.Pos, f.types(), weights)
}

// Densities computes ρ_i through the hardware potential mode, adding the
// self term m_i·W(0) on the host (the pipelines return zero for r = 0).
func (f *Fluid) Densities() ([]float64, error) {
	co, err := mdgrape2.NewCoeffs(1, 1/(f.H*f.H), f.sigma)
	if err != nil {
		return nil, err
	}
	js, err := f.jset(f.Mass)
	if err != nil {
		return nil, err
	}
	rho, err := f.sys.ComputePotentials(tableW, co, f.Pos, f.types(), nil, js)
	if err != nil {
		return nil, err
	}
	for i := range rho {
		rho[i] += f.Mass[i] * f.sigma // self contribution W(0) = σ
	}
	return rho, nil
}

// DensitiesExact is the float64 minimum-image oracle for Densities. It
// applies no cutoff: the hardware likewise evaluates every 27-cell candidate
// (the Gaussian has decayed to ~1e-16 at the neighborhood edge, so the two
// sums agree to single-precision level).
func (f *Fluid) DensitiesExact() []float64 {
	rho := make([]float64, f.N())
	for i := range f.Pos {
		rho[i] = f.Mass[i] * f.sigma
		for j := range f.Pos {
			if j == i {
				continue
			}
			r2 := f.Pos[i].Sub(f.Pos[j]).MinImage(f.L).Norm2()
			rho[i] += f.Mass[j] * f.sigma * math.Exp(-r2/(f.H*f.H))
		}
	}
	return rho
}

// pressure applies the isothermal equation of state.
func (f *Fluid) pressure(rho []float64) []float64 {
	p := make([]float64, len(rho))
	c2 := f.SoundSpeed * f.SoundSpeed
	for i, r := range rho {
		p[i] = c2 * r
	}
	return p
}

// Accelerations computes the symmetric SPH pressure acceleration through two
// hardware force passes.
func (f *Fluid) Accelerations(rho []float64) ([]vec.V, error) {
	if len(rho) != f.N() {
		return nil, fmt.Errorf("sph: %d densities for %d particles", len(rho), f.N())
	}
	p := f.pressure(rho)
	b := 2 * f.sigma / (f.H * f.H)
	co, err := mdgrape2.NewCoeffs(1, 1/(f.H*f.H), b)
	if err != nil {
		return nil, err
	}
	types := f.types()

	// Pass A: scale_i = P_i/ρ_i², charge field = m_j.
	scaleA := make([]float64, f.N())
	for i := range scaleA {
		scaleA[i] = p[i] / (rho[i] * rho[i])
	}
	jsA, err := f.jset(f.Mass)
	if err != nil {
		return nil, err
	}
	accA, err := f.sys.ComputeForces(tableGradW, co, f.Pos, types, scaleA, jsA)
	if err != nil {
		return nil, err
	}

	// Pass B: charge field = m_j·P_j/ρ_j², no host scale.
	wB := make([]float64, f.N())
	for j := range wB {
		wB[j] = f.Mass[j] * p[j] / (rho[j] * rho[j])
	}
	jsB, err := f.jset(wB)
	if err != nil {
		return nil, err
	}
	accB, err := f.sys.ComputeForces(tableGradW, co, f.Pos, types, nil, jsB)
	if err != nil {
		return nil, err
	}
	for i := range accA {
		accA[i] = accA[i].Add(accB[i])
	}
	return accA, nil
}

// AccelerationsExact is the float64 oracle for Accelerations.
func (f *Fluid) AccelerationsExact(rho []float64) []vec.V {
	p := f.pressure(rho)
	out := make([]vec.V, f.N())
	h2 := f.H * f.H
	for i := range f.Pos {
		var acc vec.V
		for j := range f.Pos {
			if j == i {
				continue
			}
			rij := f.Pos[i].Sub(f.Pos[j]).MinImage(f.L)
			r2 := rij.Norm2()
			w := 2 * f.sigma / h2 * math.Exp(-r2/h2)
			coef := f.Mass[j] * (p[i]/(rho[i]*rho[i]) + p[j]/(rho[j]*rho[j]))
			acc = acc.Add(rij.Scale(coef * w))
		}
		out[i] = acc
	}
	return out
}

// Step advances one leapfrog (kick-drift-kick) time step using hardware
// density and force passes, and returns the densities at the step's start.
func (f *Fluid) Step(dt float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("sph: non-positive time step %g", dt)
	}
	rho, err := f.Densities()
	if err != nil {
		return nil, err
	}
	acc, err := f.Accelerations(rho)
	if err != nil {
		return nil, err
	}
	for i := range f.Pos {
		f.Vel[i] = f.Vel[i].Add(acc[i].Scale(dt / 2))
		f.Pos[i] = f.Pos[i].Add(f.Vel[i].Scale(dt)).Wrap(f.L)
	}
	rho2, err := f.Densities()
	if err != nil {
		return nil, err
	}
	acc2, err := f.Accelerations(rho2)
	if err != nil {
		return nil, err
	}
	for i := range f.Pos {
		f.Vel[i] = f.Vel[i].Add(acc2[i].Scale(dt / 2))
	}
	return rho, nil
}

// Momentum returns the total momentum.
func (f *Fluid) Momentum() vec.V {
	var p vec.V
	for i := range f.Vel {
		p = p.Add(f.Vel[i].Scale(f.Mass[i]))
	}
	return p
}
