package sph

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/mdgrape2"
	"mdm/internal/vec"
)

func uniformFluid(t *testing.T, n int, l, h float64, seed int64) *Fluid {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		mass[i] = 1
	}
	f, err := NewFluid(mdgrape2.CurrentConfig(), l, h, 1.0, pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFluidValidation(t *testing.T) {
	cfg := mdgrape2.CurrentConfig()
	pos := []vec.V{vec.New(1, 1, 1)}
	mass := []float64{1}
	if _, err := NewFluid(cfg, 0, 1, 1, pos, mass); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := NewFluid(cfg, 10, 2, 1, pos, mass); err == nil {
		t.Error("3h > L/2 accepted")
	}
	if _, err := NewFluid(cfg, 10, 1, 0, pos, mass); err == nil {
		t.Error("zero sound speed accepted")
	}
	if _, err := NewFluid(cfg, 10, 1, 1, pos, nil); err == nil {
		t.Error("mass length mismatch accepted")
	}
	if _, err := NewFluid(cfg, 10, 1, 1, pos, []float64{-1}); err == nil {
		t.Error("negative mass accepted")
	}
}

func TestUniformDensity(t *testing.T) {
	const n, l, h = 400, 12.0, 1.2
	f := uniformFluid(t, n, l, h, 1)
	rho, err := f.Densities()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) / (l * l * l)
	mean := 0.0
	for _, r := range rho {
		mean += r
	}
	mean /= float64(n)
	// For a Poisson (uncorrelated) particle field the SPH estimate at a
	// particle location is biased by exactly the self term m·W(0): the
	// neighbor expectation is ρ·∫W = ρ. Remove the bias and the mean must
	// track the true density within sampling noise.
	self := 1.0 / (math.Pow(math.Pi, 1.5) * 1.2 * 1.2 * 1.2)
	if math.Abs(mean-self-want) > 0.05*want {
		t.Errorf("debiased mean SPH density = %g, true %g", mean-self, want)
	}
}

func TestDensitiesMatchOracle(t *testing.T) {
	f := uniformFluid(t, 200, 10, 1.0, 2)
	got, err := f.Densities()
	if err != nil {
		t.Fatal(err)
	}
	want := f.DensitiesExact()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 5e-5*want[i] {
			t.Errorf("particle %d: hardware ρ %g vs oracle %g", i, got[i], want[i])
		}
	}
}

func TestAccelerationsMatchOracle(t *testing.T) {
	f := uniformFluid(t, 200, 10, 1.0, 3)
	rho := f.DensitiesExact()
	got, err := f.Accelerations(rho)
	if err != nil {
		t.Fatal(err)
	}
	want := f.AccelerationsExact(rho)
	ascale := vec.RMS(want)
	if ascale == 0 {
		t.Fatal("degenerate test: zero accelerations")
	}
	// The dominant hardware error here is the float32 position quantization
	// seen through the steep Gaussian gradient (~1e-4 relative, coherent
	// across the ~100 same-sign pressure terms), not the evaluator itself.
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > 3e-4*ascale {
			t.Errorf("particle %d: hardware %v vs oracle %v", i, got[i], want[i])
		}
	}
}

func TestAccelerationValidation(t *testing.T) {
	f := uniformFluid(t, 20, 10, 1.0, 4)
	if _, err := f.Accelerations(make([]float64, 3)); err == nil {
		t.Error("density length mismatch accepted")
	}
	if _, err := f.Step(0); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestBlobExpands(t *testing.T) {
	// A dense central blob in a periodic box: pressure pushes it apart, so
	// the peak density decreases monotonically-ish and momentum stays ~0.
	const l, h = 12.0, 1.0
	rng := rand.New(rand.NewSource(5))
	var pos []vec.V
	var mass []float64
	center := vec.New(l/2, l/2, l/2)
	for i := 0; i < 150; i++ {
		p := vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(1.0)
		pos = append(pos, center.Add(p).Wrap(l))
		mass = append(mass, 1)
	}
	f, err := NewFluid(mdgrape2.CurrentConfig(), l, h, 1.0, pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	peak := func(rho []float64) float64 {
		m := 0.0
		for _, r := range rho {
			if r > m {
				m = r
			}
		}
		return m
	}
	rho0, err := f.Densities()
	if err != nil {
		t.Fatal(err)
	}
	p0 := peak(rho0)
	var last []float64
	for s := 0; s < 20; s++ {
		rho, err := f.Step(0.02)
		if err != nil {
			t.Fatal(err)
		}
		last = rho
	}
	p1 := peak(last)
	if p1 >= p0 {
		t.Errorf("peak density did not fall: %g -> %g", p0, p1)
	}
	if mom := f.Momentum().Norm(); mom > 1e-3*float64(f.N()) {
		t.Errorf("net momentum = %g", mom)
	}
	t.Logf("blob peak density %g -> %g over 20 steps; |momentum| = %.2e", p0, p1, f.Momentum().Norm())
}

func TestStatsAccumulate(t *testing.T) {
	f := uniformFluid(t, 50, 10, 1.0, 6)
	if _, err := f.Step(0.01); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	// One step = 2 density passes + 2×2 force passes = 6 pipeline calls.
	if st.Calls != 6 {
		t.Errorf("pipeline calls = %d, want 6", st.Calls)
	}
	if st.PairsEvaluated == 0 {
		t.Error("no pairs evaluated")
	}
}

func BenchmarkSPHStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, l, h = 300, 12.0, 1.2
	pos := make([]vec.V, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		mass[i] = 1
	}
	f, err := NewFluid(mdgrape2.CurrentConfig(), l, h, 1.0, pos, mass)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Step(0.01); err != nil {
			b.Fatal(err)
		}
	}
}
