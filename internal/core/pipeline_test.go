package core

import (
	"reflect"
	"testing"

	"mdm/internal/fault"
	"mdm/internal/md"
)

// The concurrent force pipeline must be invisible in the numbers: with the
// same skin, pipeline on and off produce bit-identical trajectories at every
// worker width, because the force reduction order (Coulomb + BM + r⁻⁶ + r⁻⁸
// + wave) is fixed. The -race pass over this package exercises the
// WINE-2/MDGRAPE-2 overlap.

// nveTrajectory runs a 50-step NVE segment and returns every sampled record.
func nveTrajectory(t *testing.T, pipeline bool, workers int, skin float64) []md.Record {
	t.Helper()
	s := meltLike(t, 2, 5.64, 600, 17)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Pipeline = pipeline
	cfg.Workers = workers
	cfg.Skin = skin
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Free() }()
	it, err := md.NewIntegrator(s, m, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(50, func(int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	return rec.Records
}

func TestPipelineBitIdenticalNVE(t *testing.T) {
	for _, skin := range []float64{0, 0.6} {
		want := nveTrajectory(t, false, 1, skin)
		for _, workers := range []int{1, 2, 4, 8} {
			got := nveTrajectory(t, true, workers, skin)
			if len(got) != len(want) {
				t.Fatalf("skin=%g workers=%d: %d records vs %d", skin, workers, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("skin=%g workers=%d: record %d diverges: pipeline %+v vs serial %+v",
						skin, workers, k, got[k], want[k])
				}
			}
			// The off path at the same width must agree too.
			off := nveTrajectory(t, false, workers, skin)
			for k := range want {
				if off[k] != want[k] {
					t.Fatalf("skin=%g workers=%d: pipeline-off record %d diverges", skin, workers, k)
				}
			}
		}
	}
}

// TestSkinAmortizesRebuilds checks the Verlet-skin bound actually skips cell
// sorts on a quiet system, and that the skinned discretization still
// conserves energy (forces and potential walk the same widened pair set).
func TestSkinAmortizesRebuilds(t *testing.T) {
	s := meltLike(t, 2, 5.64, 80, 23)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Pipeline = true
	cfg.Skin = 0.8
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Free() }()
	it, err := md.NewIntegrator(s, m, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(40, func(int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	rebuilds, reuses := m.JSetStats()
	if reuses == 0 {
		t.Errorf("skin=%g never reused the j-set (%d rebuilds)", cfg.Skin, rebuilds)
	}
	if rebuilds+reuses != 41 {
		t.Errorf("j-set stats %d+%d don't cover 41 force calls", rebuilds, reuses)
	}
	if drift := rec.EnergyDrift(); drift > 2e-4 {
		t.Errorf("NVE drift %.3g with skin reuse exceeds 2e-4", drift)
	}
	// An external position rewrite must force a rebuild.
	before, _ := m.JSetStats()
	it.InvalidateGeometry()
	if _, _, err := m.Forces(s); err != nil {
		t.Fatal(err)
	}
	if after, _ := m.JSetStats(); after != before+1 {
		t.Errorf("InvalidateGeometry did not force a rebuild (%d → %d)", before, after)
	}
}

// pipelineChaos drives the recovery ladder with a board drop and a transient
// landing mid-overlap (both engines active when the fault fires).
func pipelineChaos(t *testing.T, workers int) ([]md.Record, RunReport) {
	t.Helper()
	s := meltLike(t, 2, 5.64, 300, 29)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Pipeline = true
	cfg.Workers = workers
	cfg.WineBoards = 4
	in, err := fault.ParseInjector(
		"mdg:transient@call=7; wine2:board-drop@call=2,board=1; wine2:transient@call=9")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(cfg, RecoveryConfig{Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	it, err := md.NewIntegrator(s, r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(8, func(int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	if in.Remaining() != 0 {
		t.Fatalf("%d scheduled faults never fired", in.Remaining())
	}
	return rec.Records, r.Report()
}

// TestPipelineChaosDeterministic pins the recovery audit trail under the
// overlapped pipeline: whichever goroutine observes the fault first, the
// fixed join order (real-space error wins, wavenumber second) makes the
// report and the trajectory reproducible at any width.
func TestPipelineChaosDeterministic(t *testing.T) {
	recs1, rep1 := pipelineChaos(t, 1)
	recs4, rep4 := pipelineChaos(t, 4)
	if !reflect.DeepEqual(rep1, rep4) {
		t.Errorf("chaos reports diverge:\nworkers=1: %+v\nworkers=4: %+v", rep1, rep4)
	}
	if rep1.Restripes == 0 {
		t.Errorf("board drop never re-striped: %+v", rep1)
	}
	if rep1.Retries == 0 {
		t.Errorf("transients never retried: %+v", rep1)
	}
	for k := range recs1 {
		if recs1[k] != recs4[k] {
			t.Fatalf("chaos record %d diverges: %+v vs %+v", k, recs4[k], recs1[k])
		}
	}
}

// TestPipelineStepAllocs bounds the steady-state allocation count of the
// fused pipeline step. The per-step allocations that remain by design: the
// returned force slice (md.ForceField gives ownership to the caller), the
// wine goroutine + its closure, the pool.Run closures of the fused sweep and
// the sort, and the host-potential pair-walk closure. Everything else —
// sort scratch, j-set layout, quantized particle words, structure factors,
// coefficient caches, prefactor slices — is reused, which is what keeps the
// bound flat in n and step count.
func TestPipelineStepAllocs(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 31)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Pipeline = true
	cfg.Skin = 0.6
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Free() }()
	// Warm the arena.
	for i := 0; i < 3; i++ {
		if _, _, err := m.Forces(s); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, _, err := m.Forces(s); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 12 {
		t.Errorf("steady-state pipeline step does %.1f allocs, want ≤ 12", avg)
	}
}

// TestStepAllocsFlatAcrossWidths pins the fix for the per-width allocation
// growth of the parallel dispatch (BENCH_2: machineForces climbed from 11 to
// 144 allocs/op between widths 1 and 8, one shard list + error slice + capture
// struct per goroutine per dispatch): with dispatch records pooled, the
// steady-state force call must cost the same few allocations at every width.
func TestStepAllocsFlatAcrossWidths(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates per goroutine handoff; the pinned counts only hold in uninstrumented builds")
	}
	s := meltLike(t, 2, 5.64, 300, 31)
	p := smallParams(s.L)
	base := 0.0
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := CurrentMachineConfig(p)
		cfg.Pipeline = true
		cfg.Skin = 0.6
		cfg.Workers = workers
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warm the arena: grow the pooled dispatch records to this width.
		for i := 0; i < 5; i++ {
			if _, _, err := m.Forces(s); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, _, err := m.Forces(s); err != nil {
				t.Fatal(err)
			}
		})
		if workers == 1 {
			base = avg
		}
		t.Logf("workers=%d: %.1f allocs/op", workers, avg)
		if avg > base+4 {
			t.Errorf("workers=%d: %.1f allocs/op grew past width-1 baseline %.1f+4", workers, avg, base)
		}
		if avg > 16 {
			t.Errorf("workers=%d: %.1f allocs/op exceeds the flat budget of 16", workers, avg)
		}
		if err := m.Free(); err != nil {
			t.Fatal(err)
		}
	}
}
