package core

import (
	"fmt"
	"math"

	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/mpi"
	"mdm/internal/tosifumi"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// The §4 software organization: "We used 16 processes for real-space part,
// and 8 processes for wavenumber-part. The simulation box is divided into 16
// domains, and one process for real-space part performs all the calculation
// in each domain... For real-space part, communication between processes
// must be done by user." ParallelRun reproduces that organization at a
// configurable scale on the in-process MPI substrate, with persistent
// cell-block ownership per real rank; ParallelForces is the one-shot wrapper
// (build a session, run one step, free it).

// Message tags of the parallel step, exported so per-tag traffic (Stats.
// StatsByTag) can be labeled by tools.
const (
	// TagHalo carries rebuild-step ghost records: stride-5
	// (x, y, z, species, globalIndex) per particle.
	TagHalo = 100
	// TagForces carries per-rank (globalIndex, force) records to rank 0;
	// wavenumber payloads lead with a potential slot.
	TagForces = 101
	// TagGroupReduce is the wavenumber group's structure-factor reduction.
	TagGroupReduce = 102
	// TagMigrate carries rebuild-step ownership transfers: the global
	// indices of particles that crossed a domain face.
	TagMigrate = 103
	// TagGhostPos carries reuse-step ghost positions: three SoA planes
	// packed back to back in one slab.
	TagGhostPos = 104
)

// haloStride is the per-particle record width of a TagHalo payload.
const haloStride = 5

// TagName labels the parallel step's message tags for reports.
func TagName(tag int) string {
	switch tag {
	case TagHalo:
		return "halo"
	case TagForces:
		return "forces"
	case TagGroupReduce:
		return "group-reduce"
	case TagMigrate:
		return "migrate"
	case TagGhostPos:
		return "ghost-pos"
	default:
		return fmt.Sprintf("tag%d", tag)
	}
}

// groupComm adapts a subset of world ranks to the wine2.Communicator
// interface, so the WINE-2 library's internal parallelization (Table 2) runs
// unchanged on the sub-group of wavenumber processes.
type groupComm struct {
	c       *mpi.Comm
	members []int // world ranks of the group, ascending
	me      int   // index of this rank within members
}

func (g *groupComm) Rank() int { return g.me }
func (g *groupComm) Size() int { return len(g.members) }

// AllreduceSum gathers to the group root, sums, and broadcasts back, all
// within the group's world ranks.
func (g *groupComm) AllreduceSum(vals []float64) ([]float64, error) {
	if len(g.members) == 1 {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out, nil
	}
	root := g.members[0]
	if g.c.Rank() == root {
		total := make([]float64, len(vals))
		copy(total, vals)
		for _, m := range g.members[1:] {
			part, err := g.c.RecvFloat64s(m, TagGroupReduce) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
			if err != nil {
				return nil, err
			}
			if len(part) != len(vals) {
				return nil, fmt.Errorf("core: group reduce length mismatch")
			}
			for i := range total {
				total[i] += part[i]
			}
		}
		for _, m := range g.members[1:] {
			if err := g.c.Send(m, TagGroupReduce, total); err != nil {
				return nil, err
			}
		}
		return total, nil
	}
	part := make([]float64, len(vals))
	copy(part, vals)
	if err := g.c.Send(root, TagGroupReduce, part); err != nil {
		return nil, err
	}
	return g.c.RecvFloat64s(root, TagGroupReduce) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
}

// ParallelResult is the assembled output of a parallel force step.
type ParallelResult struct {
	Forces    []vec.V
	Potential float64
	// Traffic is the MPI message/byte count of the step (migration, halo
	// exchange, ghost position streaming, structure factor reduction, force
	// gathering).
	Traffic mpi.Stats
	// TrafficByTag breaks Traffic down by message tag (TagName labels
	// them). Filled by the one-shot ParallelForces; persistent sessions
	// leave it nil on the hot path — read World.StatsByTag around a run
	// instead.
	TrafficByTag map[int]mpi.Stats
}

// ParallelForces computes the full force field with the §4 process layout:
// nReal domain processes run the MDGRAPE-2 real-space passes over their own
// cell blocks, nWave processes run the WINE-2 wavenumber library, and world
// rank 0 assembles the result. The world must have exactly nReal+nWave
// ranks. This is the one-shot form — it builds a ParallelRun session, runs a
// single step, and frees the session; integrator runs should hold a
// ParallelRun instead.
func ParallelForces(world *mpi.World, cfg MachineConfig, nReal, nWave int, s *md.System) (*ParallelResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.L != cfg.Ewald.L {
		return nil, fmt.Errorf("core: system box %g differs from machine box %g", s.L, cfg.Ewald.L)
	}
	pr, err := NewParallelRun(world, cfg, nReal, nWave)
	if err != nil {
		return nil, err
	}
	defer func() { _ = pr.Free() }()
	beforeByTag := world.StatsByTag()
	res, err := pr.Step(s)
	if err != nil {
		return nil, err
	}
	res.TrafficByTag = subtractByTag(world.StatsByTag(), beforeByTag)
	return res, nil
}

// subtractByTag returns after − before per tag, dropping zero rows.
func subtractByTag(after, before map[int]mpi.Stats) map[int]mpi.Stats {
	out := make(map[int]mpi.Stats, len(after))
	//mdm:maporderok -- per-tag subtraction into a fresh map: rows are independent, order cannot affect the result
	for tag, a := range after {
		b := before[tag]
		d := mpi.Stats{Messages: a.Messages - b.Messages, Bytes: a.Bytes - b.Bytes}
		if d.Messages != 0 || d.Bytes != 0 {
			out[tag] = d
		}
	}
	return out
}

// machineCoeffsSet bundles the four coefficient RAMs.
type machineCoeffsSet struct {
	coulomb, bm, d6, d8 *mdgrape2.Coeffs
}

// machineCoeffs builds the NaCl coefficient RAMs (shared logic with
// Machine.loadCoefficients).
func machineCoeffs(p ewald.Params) (*machineCoeffsSet, error) {
	tf := tosifumi.Default()
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	coulomb, err := mdgrape2.NewCoeffs(tosifumi.NumSpecies, aC, 0)
	if err != nil {
		return nil, err
	}
	bm, _ := mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	d6, _ := mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	d8, _ := mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	rho2 := tf.Rho * tf.Rho
	for i := 0; i < tosifumi.NumSpecies; i++ {
		for j := i; j < tosifumi.NumSpecies; j++ {
			si, sj := tosifumi.Species(i), tosifumi.Species(j)
			coulomb.Set(i, j, aC, tosifumi.Charge(si)*tosifumi.Charge(sj))
			bm.Set(i, j, 1/rho2, tf.A[i][j]*tf.B*math.Exp((tf.Sigma[i]+tf.Sigma[j])/tf.Rho)/rho2)
			d6.Set(i, j, 1, -6*tf.C[i][j])
			d8.Set(i, j, 1, -8*tf.D[i][j])
		}
	}
	// Load the RAM images while setup is still single-threaded: the domain
	// ranks share this set and read it concurrently on the force path.
	coulomb.Load()
	bm.Load()
	d6.Load()
	d8.Load()
	return &machineCoeffsSet{coulomb: coulomb, bm: bm, d6: d6, d8: d8}, nil
}

// newRankMDG builds an MR1 session over one rank's share of the MDGRAPE-2
// boards (cfg.MDGBoards when set, so a re-stripe after a dropout shrinks
// every rank's share), with the four kernel tables loaded.
func newRankMDG(cfg MachineConfig, nReal, rank int) (*mdgrape2.MR1, error) {
	m, err := mdgrape2.NewMR1(cfg.MDG)
	if err != nil {
		return nil, err
	}
	m.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		//mdm:hotallocok -- rank construction: runs at machine build and re-stripe, not per clean step
		scope := fmt.Sprintf("mdg/rank%d", rank)
		m.SetHeartbeat(func() { cfg.Heartbeat(scope) })
	}
	total := cfg.MDGBoards
	if total == 0 {
		total = cfg.MDG.Boards()
	}
	boards := total / nReal
	if boards < 1 {
		boards = 1
	}
	if err := m.AllocateBoards(boards); err != nil {
		return nil, err
	}
	if err := m.Init(); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableCoulomb, EwaldRealG, -20, 8); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableBM, func(x float64) float64 {
		s := math.Sqrt(x)
		return math.Exp(-s) / s
	}, -8, 12); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableDisp6, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2)
	}, -4, 16); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableDisp8, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2 * x)
	}, -4, 16); err != nil {
		return nil, err
	}
	return m, nil
}

// newRankWine builds a WINE-2 library session over one rank's share of the
// boards (cfg.WineBoards when set, so a re-stripe after a dropout shrinks
// every rank's share).
func newRankWine(cfg MachineConfig, nWave, rank int) (*wine2.Library, error) {
	lib, err := wine2.NewLibrary(cfg.Wine)
	if err != nil {
		return nil, err
	}
	lib.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		//mdm:hotallocok -- rank construction: runs at machine build and re-stripe, not per clean step
		scope := fmt.Sprintf("wine2/rank%d", rank)
		lib.SetHeartbeat(func() { cfg.Heartbeat(scope) })
	}
	total := cfg.WineBoards
	if total == 0 {
		total = cfg.Wine.Boards()
	}
	boards := total / nWave
	if boards < 1 {
		boards = 1
	}
	if err := lib.AllocateBoards(boards); err != nil {
		return nil, err
	}
	if err := lib.InitializeBoards(); err != nil {
		return nil, err
	}
	return lib, nil
}
