package core

import (
	"fmt"
	"math"

	"mdm/internal/cellindex"
	"mdm/internal/domain"
	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/mpi"
	"mdm/internal/parallelize"
	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// The §4 software organization: "We used 16 processes for real-space part,
// and 8 processes for wavenumber-part. The simulation box is divided into 16
// domains, and one process for real-space part performs all the calculation
// in each domain... For real-space part, communication between processes
// must be done by user." ParallelForces reproduces that organization at a
// configurable scale on the in-process MPI substrate.

// Message tags of the parallel step.
const (
	tagHalo   = 100
	tagForces = 101
)

// groupComm adapts a subset of world ranks to the wine2.Communicator
// interface, so the WINE-2 library's internal parallelization (Table 2) runs
// unchanged on the sub-group of wavenumber processes.
type groupComm struct {
	c       *mpi.Comm
	members []int // world ranks of the group, ascending
	me      int   // index of this rank within members
}

func (g *groupComm) Rank() int { return g.me }
func (g *groupComm) Size() int { return len(g.members) }

const tagGroupReduce = 102

// AllreduceSum gathers to the group root, sums, and broadcasts back, all
// within the group's world ranks.
func (g *groupComm) AllreduceSum(vals []float64) ([]float64, error) {
	if len(g.members) == 1 {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out, nil
	}
	root := g.members[0]
	if g.c.Rank() == root {
		total := make([]float64, len(vals))
		copy(total, vals)
		for _, m := range g.members[1:] {
			part, err := g.c.RecvFloat64s(m, tagGroupReduce) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
			if err != nil {
				return nil, err
			}
			if len(part) != len(vals) {
				return nil, fmt.Errorf("core: group reduce length mismatch")
			}
			for i := range total {
				total[i] += part[i]
			}
		}
		for _, m := range g.members[1:] {
			if err := g.c.Send(m, tagGroupReduce, total); err != nil {
				return nil, err
			}
		}
		return total, nil
	}
	part := make([]float64, len(vals))
	copy(part, vals)
	if err := g.c.Send(root, tagGroupReduce, part); err != nil {
		return nil, err
	}
	return g.c.RecvFloat64s(root, tagGroupReduce) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
}

// ParallelResult is the assembled output of a parallel force step.
type ParallelResult struct {
	Forces    []vec.V
	Potential float64
	// Traffic is the MPI byte count of the step (halo exchange, structure
	// factor reduction, force gathering).
	Traffic mpi.Stats
}

// ParallelForces computes the full force field with the §4 process layout:
// nReal domain processes run the MDGRAPE-2 real-space passes, nWave
// processes run the WINE-2 wavenumber library, and world rank 0 assembles
// the result. The world must have exactly nReal+nWave ranks.
//
// The halo a real-space process imports spans the full 27-cell neighborhood
// of its domain (2√3 cell widths), so the parallel pair walk is identical to
// the serial one up to floating-point summation order.
func ParallelForces(world *mpi.World, cfg MachineConfig, nReal, nWave int, s *md.System) (*ParallelResult, error) {
	if nReal < 1 || nWave < 1 {
		return nil, fmt.Errorf("core: need at least one process of each kind (got %d real, %d wave)", nReal, nWave)
	}
	if world.Size() != nReal+nWave {
		return nil, fmt.Errorf("core: world size %d != %d real + %d wave", world.Size(), nReal, nWave)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Ewald
	if s.L != p.L {
		return nil, fmt.Errorf("core: system box %g differs from machine box %g", s.L, p.L)
	}
	dec, err := domain.New(p.L, nReal)
	if err != nil {
		return nil, err
	}
	before := world.Stats()

	var result ParallelResult
	runErr := world.Run(func(c *mpi.Comm) error {
		if c.Rank() < nReal {
			return realSpaceRank(c, cfg, dec, nReal, s, &result)
		}
		return waveRank(c, cfg, nReal, nWave, s, &result)
	})
	if runErr != nil {
		return nil, runErr
	}
	after := world.Stats()
	result.Traffic = mpi.Stats{
		Messages: after.Messages - before.Messages,
		Bytes:    after.Bytes - before.Bytes,
	}
	// Self-energy bookkeeping on the host.
	result.Potential += ewald.SelfEnergy(p, s.Charge)
	return &result, nil
}

// packParticles serializes (x, y, z, charge, type, globalIndex) per particle.
const packStride = 6

func packParticles(s *md.System, idx []int) []float64 {
	out := make([]float64, 0, packStride*len(idx))
	for _, i := range idx {
		out = append(out, s.Pos[i].X, s.Pos[i].Y, s.Pos[i].Z, s.Charge[i], float64(s.Type[i]), float64(i))
	}
	return out
}

// realSpaceRank is the SPMD body of one real-space (domain) process.
func realSpaceRank(c *mpi.Comm, cfg MachineConfig, dec *domain.Decomposition, nReal int, s *md.System, result *ParallelResult) error {
	p := cfg.Ewald
	me := c.Rank()
	parts := dec.Partition(s.Pos)
	own := parts[me]

	// Halo radius covering the whole 27-cell neighborhood.
	grid, err := mdgrape2Grid(p)
	if err != nil {
		return err
	}
	haloR := 2 * math.Sqrt(3) * grid.CellSize
	if haloR > p.L/2 {
		haloR = p.L / 2 * 0.999999 // everything beyond half a box is an image anyway
	}

	// Exchange: send my particles that fall inside each other domain's halo.
	send := make([]int, 0, len(own))
	for other := 0; other < nReal; other++ {
		if other == me {
			continue
		}
		send = send[:0]
		for _, i := range own {
			if dec.InHalo(other, s.Pos[i], haloR) {
				send = append(send, i)
			}
		}
		if err := c.Send(other, tagHalo, packParticles(s, send)); err != nil {
			return err
		}
	}
	// Receive halos. Note: with a large halo radius relative to the domain
	// size this degenerates to (almost) an allgather, which is also what the
	// O(N) communication scaling of §3.1 assumes.
	type halo struct {
		pos  []vec.V
		chg  []float64
		typ  []int
		gidx []int
	}
	// Size the halo buffers for their upper bound up front (every particle
	// this rank does not own), so the receive loop below never regrows them.
	var h halo
	hcap := len(s.Pos) - len(own)
	h.pos = make([]vec.V, 0, hcap)
	h.chg = make([]float64, 0, hcap)
	h.typ = make([]int, 0, hcap)
	h.gidx = make([]int, 0, hcap)
	for other := 0; other < nReal; other++ {
		if other == me {
			continue
		}
		buf, err := c.RecvFloat64s(other, tagHalo) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
		if err != nil {
			return err
		}
		for k := 0; k+packStride <= len(buf); k += packStride {
			h.pos = append(h.pos, vec.New(buf[k], buf[k+1], buf[k+2]))
			h.chg = append(h.chg, buf[k+3])
			h.typ = append(h.typ, int(buf[k+4]))
			h.gidx = append(h.gidx, int(buf[k+5]))
		}
	}

	// Assemble the j-side set (own + halo) and this rank's i-side block.
	jpos := make([]vec.V, 0, len(own)+len(h.pos))
	jtyp := make([]int, 0, len(own)+len(h.pos))
	for _, i := range own {
		jpos = append(jpos, s.Pos[i])
		jtyp = append(jtyp, s.Type[i])
	}
	jpos = append(jpos, h.pos...)
	jtyp = append(jtyp, h.typ...)

	// Per-rank MDGRAPE-2 session over this rank's share of the boards. All
	// rank sessions share one stateless pool: the pool owns no goroutines
	// between calls, so concurrent ranks stripe their own loops independently.
	pool := parallelize.New(cfg.Workers)
	m, err := newRankMDG(cfg, nReal, me)
	if err != nil {
		return err
	}
	m.SetPool(pool)
	defer func() { _ = m.Free() }()

	xi := make([]vec.V, len(own))
	ti := make([]int, len(own))
	for k, i := range own {
		xi[k] = s.Pos[i]
		ti[k] = s.Type[i]
	}
	js, err := mdgrape2.NewJSetPool(grid, jpos, jtyp, nil, pool)
	if err != nil {
		return err
	}
	co, err := machineCoeffs(p)
	if err != nil {
		return err
	}
	scale := make([]float64, len(own))
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	for i := range scale {
		scale[i] = pref
	}
	// One fused sweep replaces the four back-to-back passes; the combine
	// order (Coulomb + BM + r⁻⁶ + r⁻⁸) and the per-pass hardware call
	// sequence are identical, so forces and fault schedules are unchanged.
	forces, err := m.CalcVDWFused([]mdgrape2.ForcePass{
		{Table: tableCoulomb, Co: co.coulomb, ScaleI: scale},
		{Table: tableBM, Co: co.bm},
		{Table: tableDisp6, Co: co.d6},
		{Table: tableDisp8, Co: co.d8},
	}, xi, ti, js)
	if err != nil {
		return err
	}

	// Ship (globalIndex, force) triples to rank 0.
	out := make([]float64, 0, 4*len(own))
	for k, i := range own {
		out = append(out, float64(i), forces[k].X, forces[k].Y, forces[k].Z)
	}
	if err := c.Send(0, tagForces, out); err != nil {
		return err
	}

	if me == 0 {
		return assembleRank0(c, cfg, s, result)
	}
	return nil
}

// waveRank is the SPMD body of one wavenumber process.
func waveRank(c *mpi.Comm, cfg MachineConfig, nReal, nWave int, s *md.System, result *ParallelResult) error {
	p := cfg.Ewald
	w := c.Rank() - nReal
	n := s.N()
	lo := w * n / nWave
	hi := (w + 1) * n / nWave

	members := make([]int, nWave)
	for i := range members {
		members[i] = nReal + i
	}
	lib, err := newRankWine(cfg, nWave, w)
	if err != nil {
		return err
	}
	lib.SetPool(parallelize.New(cfg.Workers))
	defer func() { _ = lib.FreeBoards() }()
	lib.SetMPICommunity(&groupComm{c: c, members: members, me: w})
	if err := lib.SetNN(max(hi-lo, 1)); err != nil {
		return err
	}
	waves := ewald.Waves(p)
	forces, pot, err := lib.CalcForceAndPotWavepart(p, waves, s.Pos[lo:hi], s.Charge[lo:hi])
	if err != nil {
		return err
	}
	out := make([]float64, 0, 4*(hi-lo)+1)
	// First slot: the wavenumber potential (only wave rank 0 reports it to
	// avoid double counting).
	if w == 0 {
		out = append(out, pot)
	} else {
		out = append(out, math.NaN())
	}
	for k := lo; k < hi; k++ {
		out = append(out, float64(k), forces[k-lo].X, forces[k-lo].Y, forces[k-lo].Z)
	}
	return c.Send(0, tagForces, out)
}

// assembleRank0 gathers force contributions at world rank 0. Wave-rank
// payloads are distinguished by length: they lead with a potential slot, so
// their length is ≡ 1 (mod 4), while real-rank payloads are ≡ 0 (mod 4).
func assembleRank0(c *mpi.Comm, cfg MachineConfig, s *md.System, result *ParallelResult) error {
	total := make([]vec.V, s.N())
	for src := 0; src < c.Size(); src++ {
		buf, err := c.RecvFloat64s(src, tagForces) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
		if err != nil {
			return err
		}
		k := 0
		if len(buf)%4 == 1 { // wave-rank payload: leading potential slot
			if !math.IsNaN(buf[0]) {
				result.Potential += buf[0]
			}
			k = 1
		}
		for ; k+4 <= len(buf); k += 4 {
			i := int(buf[k])
			total[i] = total[i].Add(vec.New(buf[k+1], buf[k+2], buf[k+3]))
		}
	}
	// Host-side real-space + short-range potential in float64, consistent
	// with the cutoff-free pair set the MDGRAPE-2 passes evaluated.
	grid, err := mdgrape2Grid(cfg.Ewald)
	if err != nil {
		return err
	}
	result.Potential += machineRealPotential(cfg.Ewald, grid, tosifumi.Default(), s)
	result.Forces = total
	return nil
}

// machineCoeffsSet bundles the four coefficient RAMs.
type machineCoeffsSet struct {
	coulomb, bm, d6, d8 *mdgrape2.Coeffs
}

// machineCoeffs builds the NaCl coefficient RAMs (shared logic with
// Machine.loadCoefficients).
func machineCoeffs(p ewald.Params) (*machineCoeffsSet, error) {
	tf := tosifumi.Default()
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	coulomb, err := mdgrape2.NewCoeffs(tosifumi.NumSpecies, aC, 0)
	if err != nil {
		return nil, err
	}
	bm, _ := mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	d6, _ := mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	d8, _ := mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	rho2 := tf.Rho * tf.Rho
	for i := 0; i < tosifumi.NumSpecies; i++ {
		for j := i; j < tosifumi.NumSpecies; j++ {
			si, sj := tosifumi.Species(i), tosifumi.Species(j)
			coulomb.Set(i, j, aC, tosifumi.Charge(si)*tosifumi.Charge(sj))
			bm.Set(i, j, 1/rho2, tf.A[i][j]*tf.B*math.Exp((tf.Sigma[i]+tf.Sigma[j])/tf.Rho)/rho2)
			d6.Set(i, j, 1, -6*tf.C[i][j])
			d8.Set(i, j, 1, -8*tf.D[i][j])
		}
	}
	return &machineCoeffsSet{coulomb: coulomb, bm: bm, d6: d6, d8: d8}, nil
}

// mdgrape2Grid builds the global cell grid for the discretization; its
// geometry depends only on (L, r_cut), so every rank agrees on it.
func mdgrape2Grid(p ewald.Params) (*cellindex.Grid, error) {
	return cellindex.NewGrid(p.L, p.RCut)
}

// newRankMDG builds an MR1 session over one rank's share of the MDGRAPE-2
// boards (cfg.MDGBoards when set, so a re-stripe after a dropout shrinks
// every rank's share), with the four kernel tables loaded.
func newRankMDG(cfg MachineConfig, nReal, rank int) (*mdgrape2.MR1, error) {
	m, err := mdgrape2.NewMR1(cfg.MDG)
	if err != nil {
		return nil, err
	}
	m.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		//mdm:hotallocok -- rank construction: runs at machine build and re-stripe, not per clean step
		scope := fmt.Sprintf("mdg/rank%d", rank)
		m.SetHeartbeat(func() { cfg.Heartbeat(scope) })
	}
	total := cfg.MDGBoards
	if total == 0 {
		total = cfg.MDG.Boards()
	}
	boards := total / nReal
	if boards < 1 {
		boards = 1
	}
	if err := m.AllocateBoards(boards); err != nil {
		return nil, err
	}
	if err := m.Init(); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableCoulomb, EwaldRealG, -20, 8); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableBM, func(x float64) float64 {
		s := math.Sqrt(x)
		return math.Exp(-s) / s
	}, -8, 12); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableDisp6, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2)
	}, -4, 16); err != nil {
		return nil, err
	}
	if err := m.SetTable(tableDisp8, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2 * x)
	}, -4, 16); err != nil {
		return nil, err
	}
	return m, nil
}

// newRankWine builds a WINE-2 library session over one rank's share of the
// boards (cfg.WineBoards when set, so a re-stripe after a dropout shrinks
// every rank's share).
func newRankWine(cfg MachineConfig, nWave, rank int) (*wine2.Library, error) {
	lib, err := wine2.NewLibrary(cfg.Wine)
	if err != nil {
		return nil, err
	}
	lib.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		//mdm:hotallocok -- rank construction: runs at machine build and re-stripe, not per clean step
		scope := fmt.Sprintf("wine2/rank%d", rank)
		lib.SetHeartbeat(func() { cfg.Heartbeat(scope) })
	}
	total := cfg.WineBoards
	if total == 0 {
		total = cfg.Wine.Boards()
	}
	boards := total / nWave
	if boards < 1 {
		boards = 1
	}
	if err := lib.AllocateBoards(boards); err != nil {
		return nil, err
	}
	if err := lib.InitializeBoards(); err != nil {
		return nil, err
	}
	return lib, nil
}
