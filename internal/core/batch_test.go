package core

import (
	"testing"

	"mdm/internal/md"
)

// The batch driver's whole claim is that sharing one machine is invisible in
// the numbers: every slot's trajectory must be bit-identical to running that
// system alone on a fresh Machine, independent of K and of slot order. The
// -race pass over this package exercises the slot swap under the overlapped
// pipeline.

// soloTrajectory steps one system on its own Machine and returns the sampled
// records plus the final system state.
func soloTrajectory(t *testing.T, cfg MachineConfig, seed int64, steps int) ([]md.Record, *md.System) {
	t.Helper()
	s := meltLike(t, 2, 5.64, 600, seed)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Free() }()
	it, err := md.NewIntegrator(s, m, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(steps, func(int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	return rec.Records, s
}

// batchTrajectories steps the seeded systems through one BatchMachine and
// returns per-slot records and final states.
func batchTrajectories(t *testing.T, cfg MachineConfig, seeds []int64, steps int) ([][]md.Record, []*md.System) {
	t.Helper()
	systems := make([]*md.System, len(seeds))
	for i, seed := range seeds {
		systems[i] = meltLike(t, 2, 5.64, 600, seed)
	}
	b, err := NewBatchMachine(cfg, systems, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Free() }()
	recs := make([]*md.Recorder, len(seeds))
	for i := range recs {
		recs[i] = &md.Recorder{}
		recs[i].Sample(b.Integrator(i))
	}
	err = b.Run(steps, func(int) error {
		for i := range recs {
			recs[i].Sample(b.Integrator(i))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]md.Record, len(seeds))
	for i := range recs {
		out[i] = recs[i].Records
	}
	return out, systems
}

func sameTrajectory(t *testing.T, label string, got, want []md.Record, gotSys, wantSys *md.System) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records vs %d", label, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s: record %d diverges: %+v vs %+v", label, k, got[k], want[k])
		}
	}
	for i := range wantSys.Pos {
		if gotSys.Pos[i] != wantSys.Pos[i] || gotSys.Vel[i] != wantSys.Vel[i] {
			t.Fatalf("%s: final state diverges at particle %d", label, i)
		}
	}
}

// TestBatchSlotsBitIdenticalToSolo pins the batch determinism contract: each
// slot of a K=3 batch reproduces, bit for bit, the same system run alone on
// a fresh machine; permuting the slots or shrinking the batch to K=1 changes
// nothing. Runs under the overlapped pipeline with a Verlet skin, the most
// state-laden configuration of the step path.
func TestBatchSlotsBitIdenticalToSolo(t *testing.T) {
	s := meltLike(t, 2, 5.64, 600, 1)
	cfg := CurrentMachineConfig(smallParams(s.L))
	cfg.Pipeline = true
	cfg.Skin = 0.6
	cfg.PotentialEvery = 5
	const steps = 20
	seeds := []int64{101, 102, 103}

	solo := make(map[int64][]md.Record)
	soloSys := make(map[int64]*md.System)
	for _, seed := range seeds {
		solo[seed], soloSys[seed] = soloTrajectory(t, cfg, seed, steps)
	}

	recs, systems := batchTrajectories(t, cfg, seeds, steps)
	for i, seed := range seeds {
		sameTrajectory(t, "K=3 slot vs solo", recs[i], solo[seed], systems[i], soloSys[seed])
	}

	// Slot order must not matter.
	perm := []int64{103, 101, 102}
	recsP, systemsP := batchTrajectories(t, cfg, perm, steps)
	for i, seed := range perm {
		sameTrajectory(t, "permuted slot vs solo", recsP[i], solo[seed], systemsP[i], soloSys[seed])
	}

	// Neither must K.
	recs1, systems1 := batchTrajectories(t, cfg, seeds[1:2], steps)
	sameTrajectory(t, "K=1 slot vs solo", recs1[0], solo[seeds[1]], systems1[0], soloSys[seeds[1]])
}

// TestBatchSlotJSetStatsIndependent checks the per-slot Verlet-skin
// bookkeeping: every slot's rebuild/reuse split covers its own force calls,
// and a quiet slot actually reuses its layout even while sharing the machine.
func TestBatchSlotJSetStatsIndependent(t *testing.T) {
	s := meltLike(t, 2, 5.64, 80, 1)
	cfg := CurrentMachineConfig(smallParams(s.L))
	cfg.Skin = 0.8
	const steps = 15
	systems := []*md.System{
		meltLike(t, 2, 5.64, 80, 7),
		meltLike(t, 2, 5.64, 80, 8),
	}
	b, err := NewBatchMachine(cfg, systems, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Free() }()
	if err := b.Run(steps, nil); err != nil {
		t.Fatal(err)
	}
	for i := range systems {
		rebuilds, reuses := b.JSetStats(i)
		if rebuilds+reuses != steps+1 {
			t.Errorf("slot %d: j-set stats %d+%d don't cover %d force calls", i, rebuilds, reuses, steps+1)
		}
		if reuses == 0 {
			t.Errorf("slot %d: skin=%g never reused the j-set", i, cfg.Skin)
		}
	}
}

// TestBatchBoxMismatch rejects a slot whose box differs from the machine's.
func TestBatchBoxMismatch(t *testing.T) {
	s := meltLike(t, 2, 5.64, 600, 1)
	cfg := CurrentMachineConfig(smallParams(s.L))
	bad, err := md.NewRockSalt(3, 5.64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchMachine(cfg, []*md.System{s, bad}, 2.0); err == nil {
		t.Fatal("batch accepted a slot with a mismatched box")
	}
	if _, err := NewBatchMachine(cfg, nil, 2.0); err == nil {
		t.Fatal("batch accepted zero systems")
	}
}
