package core

import (
	"fmt"
	"math"

	"mdm/internal/cellindex"
	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/parallelize"
	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// Table names loaded into the MDGRAPE-2 function-evaluator RAM. The
// short-range Tosi–Fumi potential decomposes into three universal kernel
// shapes whose per-pair coefficients fit the a_ij/b_ij coefficient RAM:
//
//	Born–Mayer:  A b e^((σi+σj-r)/ρ) → g(x) = e^(-√x)/√x, a = 1/ρ²,
//	             b = A_ij B e^((σi+σj)/ρ)/ρ²
//	r⁻⁶ term:    g(x) = x⁻⁴, a = 1, b = -6 c_ij
//	r⁻⁸ term:    g(x) = x⁻⁵, a = 1, b = -8 d_ij
//
// so the whole force field runs in four MDGRAPE-2 passes per step (one more
// for the real-space Coulomb kernel of §3.5.4).
const (
	tableCoulomb = "coulomb-real"
	tableBM      = "born-mayer"
	tableDisp6   = "dispersion-r6"
	tableDisp8   = "dispersion-r8"

	// Potential-mode tables (φ rather than g = -φ'/r).
	tableCoulombPot = "coulomb-real-pot"
	tableBMPot      = "born-mayer-pot"
	tableDisp6Pot   = "dispersion-r6-pot"
	tableDisp8Pot   = "dispersion-r8-pot"
)

// EwaldRealG is the real-space Coulomb kernel of §3.5.4:
// g(x) = 2 exp(-x)/(√π x) + erfc(√x)/x^(3/2), with x = (α r/L)².
func EwaldRealG(x float64) float64 {
	return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
}

// MachineConfig selects the hardware generation and the Ewald
// discretization run on it.
type MachineConfig struct {
	Ewald      ewald.Params
	Wine       wine2.Config
	MDG        mdgrape2.Config
	WineBoards int // boards to acquire (0 = all)
	MDGBoards  int // boards to acquire (0 = all)

	// PotentialEvery controls how often the host evaluates the potential
	// energy (the paper computed it every 100 steps, §5). 1 evaluates it on
	// every force call; k > 1 reuses the last value for k-1 calls.
	PotentialEvery int

	// HardwarePotential computes the real-space potential energy on the
	// MDGRAPE-2 potential mode (four φ-table passes) instead of the host
	// float64 path.
	HardwarePotential bool

	// FaultHook, when non-nil, is installed on both simulated backends (and
	// on every per-rank session of the parallel path) so a fault.Injector can
	// fail or corrupt hardware calls. Nil disables injection.
	FaultHook fault.HardwareHook

	// Heartbeat, when non-nil, is invoked with a scope name ("wine2", "mdg",
	// or a per-rank scope on the parallel path) at the entry of every
	// hardware call — the watchdog's view of board progress. Nil (the
	// default) costs one nil check per call.
	Heartbeat func(scope string)

	// Workers is the host worker-pool width striping the simulated pipelines
	// across OS threads (package parallelize). 0 selects runtime.GOMAXPROCS(0);
	// 1 forces the serial code path. Every width is bit-identical.
	Workers int
}

// CurrentMachineConfig returns the July-2000 MDM (45 Tflops WINE-2 +
// 1 Tflops MDGRAPE-2) with the given Ewald discretization.
func CurrentMachineConfig(p ewald.Params) MachineConfig {
	return MachineConfig{
		Ewald:          p,
		Wine:           wine2.CurrentConfig(),
		MDG:            mdgrape2.CurrentConfig(),
		PotentialEvery: 1,
	}
}

// Machine is the simulated MDM evaluating the molten-NaCl force field. It
// implements md.ForceField.
type Machine struct {
	cfg   MachineConfig
	pot   *tosifumi.Potential
	waves []ewald.Wave
	grid  *cellindex.Grid

	mr1  *mdgrape2.MR1
	wine *wine2.Library
	pool *parallelize.Pool

	coCoulomb *mdgrape2.Coeffs
	coBM      *mdgrape2.Coeffs
	coD6      *mdgrape2.Coeffs
	coD8      *mdgrape2.Coeffs

	// Potential-mode coefficient RAMs (HardwarePotential only).
	coBMPot *mdgrape2.Coeffs
	coD6Pot *mdgrape2.Coeffs
	coD8Pot *mdgrape2.Coeffs

	potCalls int
	lastPot  float64
}

// NewMachine acquires the simulated boards, loads the kernel tables and
// coefficient RAMs, and precomputes the wavevector set — the initialization
// sequence of Tables 2 and 3.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if err := cfg.Ewald.Validate(); err != nil {
		return nil, err
	}
	if cfg.PotentialEvery < 1 {
		cfg.PotentialEvery = 1
	}
	grid, err := cellindex.NewGrid(cfg.Ewald.L, cfg.Ewald.RCut)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		pot:   tosifumi.Default(),
		waves: ewald.Waves(cfg.Ewald),
		grid:  grid,
		pool:  parallelize.New(cfg.Workers),
	}

	// MDGRAPE-2 session (Table 3 sequence).
	mr1, err := mdgrape2.NewMR1(cfg.MDG)
	if err != nil {
		return nil, err
	}
	mr1.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		mr1.SetHeartbeat(func() { cfg.Heartbeat("mdg") })
	}
	mr1.SetPool(m.pool)
	boards := cfg.MDGBoards
	if boards == 0 {
		boards = cfg.MDG.Boards()
	}
	if err := mr1.AllocateBoards(boards); err != nil {
		return nil, err
	}
	if err := mr1.Init(); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableCoulomb, EwaldRealG, -20, 8); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableBM, func(x float64) float64 {
		s := math.Sqrt(x)
		return math.Exp(-s) / s
	}, -8, 12); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableDisp6, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2)
	}, -4, 16); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableDisp8, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2 * x)
	}, -4, 16); err != nil {
		return nil, err
	}
	if cfg.HardwarePotential {
		if err := mr1.SetTable(tableCoulombPot, func(x float64) float64 {
			s := math.Sqrt(x)
			return math.Erfc(s) / s
		}, -20, 8); err != nil {
			return nil, err
		}
		if err := mr1.SetTable(tableBMPot, func(x float64) float64 {
			return math.Exp(-math.Sqrt(x))
		}, -8, 12); err != nil {
			return nil, err
		}
		if err := mr1.SetTable(tableDisp6Pot, func(x float64) float64 {
			return 1 / (x * x * x)
		}, -4, 16); err != nil {
			return nil, err
		}
		if err := mr1.SetTable(tableDisp8Pot, func(x float64) float64 {
			x2 := x * x
			return 1 / (x2 * x2)
		}, -4, 16); err != nil {
			return nil, err
		}
	}
	m.mr1 = mr1

	// WINE-2 session (Table 2 sequence).
	lib, err := wine2.NewLibrary(cfg.Wine)
	if err != nil {
		return nil, err
	}
	lib.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		lib.SetHeartbeat(func() { cfg.Heartbeat("wine2") })
	}
	lib.SetPool(m.pool)
	wboards := cfg.WineBoards
	if wboards == 0 {
		wboards = cfg.Wine.Boards()
	}
	if err := lib.AllocateBoards(wboards); err != nil {
		return nil, err
	}
	if err := lib.InitializeBoards(); err != nil {
		return nil, err
	}
	m.wine = lib

	if err := m.loadCoefficients(); err != nil {
		return nil, err
	}
	return m, nil
}

// loadCoefficients fills the MDGRAPE-2 coefficient RAMs for the two NaCl
// species.
func (m *Machine) loadCoefficients() error {
	p := m.cfg.Ewald
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	var err error
	m.coCoulomb, err = mdgrape2.NewCoeffs(tosifumi.NumSpecies, aC, 0)
	if err != nil {
		return err
	}
	m.coBM, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD6, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD8, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coBMPot, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD6Pot, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD8Pot, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	tf := m.pot
	rho2 := tf.Rho * tf.Rho
	for i := 0; i < tosifumi.NumSpecies; i++ {
		for j := i; j < tosifumi.NumSpecies; j++ {
			si, sj := tosifumi.Species(i), tosifumi.Species(j)
			qq := tosifumi.Charge(si) * tosifumi.Charge(sj)
			m.coCoulomb.Set(i, j, aC, qq)
			bm := tf.A[i][j] * tf.B * math.Exp((tf.Sigma[i]+tf.Sigma[j])/tf.Rho)
			m.coBM.Set(i, j, 1/rho2, bm/rho2)
			m.coD6.Set(i, j, 1, -6*tf.C[i][j])
			m.coD8.Set(i, j, 1, -8*tf.D[i][j])
			m.coBMPot.Set(i, j, 1/rho2, bm)
			m.coD6Pot.Set(i, j, 1, -tf.C[i][j])
			m.coD8Pot.Set(i, j, 1, -tf.D[i][j])
		}
	}
	return nil
}

// Waves returns the wavevector set in use.
func (m *Machine) Waves() []ewald.Wave { return m.waves }

// MDGStats returns the MDGRAPE-2 work counters.
func (m *Machine) MDGStats() mdgrape2.Stats { return m.mr1.System().Stats() }

// WineStats returns the WINE-2 work counters.
func (m *Machine) WineStats() wine2.Stats { return m.wine.System().Stats() }

// Free releases both backend sessions.
func (m *Machine) Free() error {
	if err := m.mr1.Free(); err != nil {
		return err
	}
	return m.wine.FreeBoards()
}

// Forces implements md.ForceField: the per-step flow of §3.1 — send
// positions to both backends, real-space forces from MDGRAPE-2 (four kernel
// passes), wavenumber-space forces from WINE-2, host combines and adds the
// self-energy bookkeeping.
func (m *Machine) Forces(s *md.System) ([]vec.V, float64, error) {
	p := m.cfg.Ewald
	if s.L != p.L {
		return nil, 0, fmt.Errorf("core: system box %g differs from machine box %g", s.L, p.L)
	}
	n := s.N()

	// The j-side memory image: all particles, sorted by cell.
	js, err := mdgrape2.NewJSetPool(m.grid, s.Pos, s.Type, nil, m.pool)
	if err != nil {
		return nil, 0, err
	}

	// Real-space Coulomb pass: b carries q_i·q_j, host scale k_e (α/L)³.
	scale := make([]float64, n)
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	for i := range scale {
		scale[i] = pref
	}
	forces, err := m.mr1.CalcVDWBlock2(tableCoulomb, m.coCoulomb, s.Pos, s.Type, scale, js)
	if err != nil {
		return nil, 0, fmt.Errorf("core: Coulomb real-space pass: %w", err)
	}

	// Short-range passes.
	for _, pass := range []struct {
		table string
		co    *mdgrape2.Coeffs
	}{
		{tableBM, m.coBM},
		{tableDisp6, m.coD6},
		{tableDisp8, m.coD8},
	} {
		f, err := m.mr1.CalcVDWBlock2(pass.table, pass.co, s.Pos, s.Type, nil, js)
		if err != nil {
			return nil, 0, fmt.Errorf("core: %s pass: %w", pass.table, err)
		}
		for i := range forces {
			forces[i] = forces[i].Add(f[i])
		}
	}

	// Wavenumber-space part on WINE-2.
	if err := m.wine.SetNN(n); err != nil {
		return nil, 0, err
	}
	wf, wavePot, err := m.wine.CalcForceAndPotWavepart(p, m.waves, s.Pos, s.Charge)
	if err != nil {
		return nil, 0, fmt.Errorf("core: wavenumber pass: %w", err)
	}
	for i := range forces {
		forces[i] = forces[i].Add(wf[i])
	}

	// Potential-energy bookkeeping (every PotentialEvery calls, like the
	// paper's every-100-steps evaluation), either on the host in float64 or
	// through the MDGRAPE-2 potential mode.
	if m.potCalls%m.cfg.PotentialEvery == 0 {
		var realPot float64
		if m.cfg.HardwarePotential {
			realPot, err = m.hardwarePotential(s, js)
			if err != nil {
				return nil, 0, fmt.Errorf("core: hardware potential: %w", err)
			}
		} else {
			realPot = m.hostPotential(s)
		}
		m.lastPot = realPot + wavePot + ewald.SelfEnergy(p, s.Charge)
	}
	m.potCalls++
	return forces, m.lastPot, nil
}

// hardwarePotential evaluates the real-space potential on the MDGRAPE-2
// potential mode: four φ-table passes over the same 27-cell pair set as the
// force passes, halved because every unordered pair is visited twice.
func (m *Machine) hardwarePotential(s *md.System, js *mdgrape2.JSet) (float64, error) {
	p := m.cfg.Ewald
	n := s.N()
	scale := make([]float64, n)
	pref := units.Coulomb * p.Alpha / p.L
	for i := range scale {
		scale[i] = pref
	}
	total := 0.0
	for _, pass := range []struct {
		table string
		co    *mdgrape2.Coeffs
		scale []float64
	}{
		{tableCoulombPot, m.coCoulomb, scale},
		{tableBMPot, m.coBMPot, nil},
		{tableDisp6Pot, m.coD6Pot, nil},
		{tableDisp8Pot, m.coD8Pot, nil},
	} {
		pots, err := m.mr1.System().ComputePotentials(pass.table, pass.co, s.Pos, s.Type, pass.scale, js)
		if err != nil {
			return 0, fmt.Errorf("%s pass: %w", pass.table, err)
		}
		for _, pe := range pots {
			total += pe
		}
	}
	return total / 2, nil
}

// hostPotential evaluates the real-space Coulomb and short-range potential
// energy in float64 on the host. It walks the same 27-cell pair set as the
// MDGRAPE-2 force passes (which apply no r_cut test, §2.2), so the potential
// stays consistent with the forces — the condition for energy conservation.
func (m *Machine) hostPotential(s *md.System) float64 {
	return machineRealPotential(m.cfg.Ewald, m.grid, m.pot, s)
}

// machineRealPotential is the 27-cell (cutoff-free) real-space potential:
// every ordered pair is visited twice, so the sum is halved. True self pairs
// (r = 0) contribute nothing, as in the pipelines.
func machineRealPotential(p ewald.Params, grid *cellindex.Grid, tf *tosifumi.Potential, s *md.System) float64 {
	sorted := cellindex.Sort(grid, s.Pos)
	pot := 0.0
	sorted.ForEachOrderedPair(func(i, j int, rij vec.V) {
		r2 := rij.Norm2()
		if r2 == 0 {
			return
		}
		oi, oj := sorted.Order[i], sorted.Order[j]
		pot += p.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
		pot += tf.ShortEnergy(tosifumi.Species(s.Type[oi]), tosifumi.Species(s.Type[oj]), rij.Norm())
	})
	return pot / 2
}
