package core

import (
	"fmt"
	"math"

	"mdm/internal/cellindex"
	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/parallelize"
	"mdm/internal/soa"
	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// Table names loaded into the MDGRAPE-2 function-evaluator RAM. The
// short-range Tosi–Fumi potential decomposes into three universal kernel
// shapes whose per-pair coefficients fit the a_ij/b_ij coefficient RAM:
//
//	Born–Mayer:  A b e^((σi+σj-r)/ρ) → g(x) = e^(-√x)/√x, a = 1/ρ²,
//	             b = A_ij B e^((σi+σj)/ρ)/ρ²
//	r⁻⁶ term:    g(x) = x⁻⁴, a = 1, b = -6 c_ij
//	r⁻⁸ term:    g(x) = x⁻⁵, a = 1, b = -8 d_ij
//
// so the whole force field runs in four MDGRAPE-2 passes per step (one more
// for the real-space Coulomb kernel of §3.5.4).
const (
	tableCoulomb = "coulomb-real"
	tableBM      = "born-mayer"
	tableDisp6   = "dispersion-r6"
	tableDisp8   = "dispersion-r8"

	// Potential-mode tables (φ rather than g = -φ'/r).
	tableCoulombPot = "coulomb-real-pot"
	tableBMPot      = "born-mayer-pot"
	tableDisp6Pot   = "dispersion-r6-pot"
	tableDisp8Pot   = "dispersion-r8-pot"
)

// EwaldRealG is the real-space Coulomb kernel of §3.5.4:
// g(x) = 2 exp(-x)/(√π x) + erfc(√x)/x^(3/2), with x = (α r/L)².
func EwaldRealG(x float64) float64 {
	return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
}

// MachineConfig selects the hardware generation and the Ewald
// discretization run on it.
type MachineConfig struct {
	Ewald      ewald.Params
	Wine       wine2.Config
	MDG        mdgrape2.Config
	WineBoards int // boards to acquire (0 = all)
	MDGBoards  int // boards to acquire (0 = all)

	// PotentialEvery controls how often the host evaluates the potential
	// energy (the paper computed it every 100 steps, §5). 1 evaluates it on
	// every force call; k > 1 reuses the last value for k-1 calls.
	PotentialEvery int

	// HardwarePotential computes the real-space potential energy on the
	// MDGRAPE-2 potential mode (four φ-table passes) instead of the host
	// float64 path.
	HardwarePotential bool

	// FaultHook, when non-nil, is installed on both simulated backends (and
	// on every per-rank session of the parallel path) so a fault.Injector can
	// fail or corrupt hardware calls. Nil disables injection.
	FaultHook fault.HardwareHook

	// Heartbeat, when non-nil, is invoked with a scope name ("wine2", "mdg",
	// or a per-rank scope on the parallel path) at the entry of every
	// hardware call — the watchdog's view of board progress. Nil (the
	// default) costs one nil check per call.
	Heartbeat func(scope string)

	// Workers is the host worker-pool width striping the simulated pipelines
	// across OS threads (package parallelize). 0 selects runtime.GOMAXPROCS(0);
	// 1 forces the serial code path. Every width is bit-identical.
	Workers int

	// Pipeline overlaps the WINE-2 wavenumber pass with the MDGRAPE-2
	// real-space work of each step — the machine-level concurrency of §3.1
	// (the two engines are independent until the host combines forces) — and
	// fuses the four real-space table passes into one cell-index sweep.
	// Forces are bit-identical to the sequential path: the fixed-order
	// reduction Coulomb + BM + r⁻⁶ + r⁻⁸ + wave is preserved exactly.
	Pipeline bool

	// Skin widens the cell grid to RCut+Skin (Å) so the sorted j-set can be
	// reused across steps until some particle has moved more than Skin/2
	// since the last rebuild — the Verlet-skin amortization of the host sort.
	// Zero rebuilds every step. A non-zero skin changes which far pairs the
	// cutoff-free 27-cell walk sees, so it is a different (equally valid)
	// discretization, not a bit-identical one; forces and potential stay
	// mutually consistent.
	Skin float64
}

// CurrentMachineConfig returns the July-2000 MDM (45 Tflops WINE-2 +
// 1 Tflops MDGRAPE-2) with the given Ewald discretization.
func CurrentMachineConfig(p ewald.Params) MachineConfig {
	return MachineConfig{
		Ewald:          p,
		Wine:           wine2.CurrentConfig(),
		MDG:            mdgrape2.CurrentConfig(),
		PotentialEvery: 1,
	}
}

// Machine is the simulated MDM evaluating the molten-NaCl force field. It
// implements md.ForceField.
type Machine struct {
	cfg   MachineConfig
	pot   *tosifumi.Potential
	waves []ewald.Wave
	grid  *cellindex.Grid

	mr1  *mdgrape2.MR1
	wine *wine2.Library
	pool *parallelize.Pool

	coCoulomb *mdgrape2.Coeffs
	coBM      *mdgrape2.Coeffs
	coD6      *mdgrape2.Coeffs
	coD8      *mdgrape2.Coeffs

	// Potential-mode coefficient RAMs (HardwarePotential only).
	coBMPot *mdgrape2.Coeffs
	coD6Pot *mdgrape2.Coeffs
	coD8Pot *mdgrape2.Coeffs

	potCalls int
	lastPot  float64

	// fuse runs the real-space work as one fused four-table sweep even
	// without the pipeline's engine overlap — same bits (the fixed reduction
	// order is preserved), one pair enumeration instead of four, still
	// strictly serial. The batch driver sets it: batched throughput must not
	// depend on a second core, but may amortize the pair walk across tables.
	// It stays off for the plain sequential path because the recovery layer's
	// fault scenarios count four MDGRAPE-2 calls per step there.
	fuse bool

	// Step-path state, reused across Forces calls (the zero-alloc step path).
	jsb          *mdgrape2.JSetBuilder // amortized j-set construction
	js           *mdgrape2.JSet        // current j-set (owned by jsb)
	refPos       []vec.V               // positions at the last j-set rebuild
	haveJSet     bool
	jsetRebuilds int
	jsetReuses   int
	scale        []float64 // hoisted per-i Coulomb force prefactor
	potScale     []float64 // hoisted per-i Coulomb potential prefactor
	passes       [4]mdgrape2.ForcePass
	wineForces   []vec.V         // wavenumber force buffer (sequential path)
	realFC       soa.Coords      // fused-sweep force planes (pipeline path)
	wineFC       soa.Coords      // wavenumber force planes (pipeline path)
	wineDone     chan wineResult // join channel, reused across steps
}

// wineResult carries the wavenumber pass result across the pipeline join.
type wineResult struct {
	fc  soa.Coords
	pot float64
	err error
}

// NewMachine acquires the simulated boards, loads the kernel tables and
// coefficient RAMs, and precomputes the wavevector set — the initialization
// sequence of Tables 2 and 3.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if err := cfg.Ewald.Validate(); err != nil {
		return nil, err
	}
	if cfg.PotentialEvery < 1 {
		cfg.PotentialEvery = 1
	}
	if cfg.Skin < 0 {
		return nil, fmt.Errorf("core: negative Verlet skin %g", cfg.Skin)
	}
	grid, err := cellindex.NewGrid(cfg.Ewald.L, cfg.Ewald.RCut+cfg.Skin)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		pot:      tosifumi.Default(),
		waves:    ewald.Waves(cfg.Ewald),
		grid:     grid,
		pool:     parallelize.New(cfg.Workers),
		wineDone: make(chan wineResult, 1),
	}
	m.jsb = mdgrape2.NewJSetBuilder(grid, m.pool)

	// MDGRAPE-2 session (Table 3 sequence).
	mr1, err := mdgrape2.NewMR1(cfg.MDG)
	if err != nil {
		return nil, err
	}
	mr1.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		mr1.SetHeartbeat(func() { cfg.Heartbeat("mdg") })
	}
	mr1.SetPool(m.pool)
	boards := cfg.MDGBoards
	if boards == 0 {
		boards = cfg.MDG.Boards()
	}
	if err := mr1.AllocateBoards(boards); err != nil {
		return nil, err
	}
	if err := mr1.Init(); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableCoulomb, EwaldRealG, -20, 8); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableBM, func(x float64) float64 {
		s := math.Sqrt(x)
		return math.Exp(-s) / s
	}, -8, 12); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableDisp6, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2)
	}, -4, 16); err != nil {
		return nil, err
	}
	if err := mr1.SetTable(tableDisp8, func(x float64) float64 {
		x2 := x * x
		return 1 / (x2 * x2 * x)
	}, -4, 16); err != nil {
		return nil, err
	}
	if cfg.HardwarePotential {
		if err := mr1.SetTable(tableCoulombPot, func(x float64) float64 {
			s := math.Sqrt(x)
			return math.Erfc(s) / s
		}, -20, 8); err != nil {
			return nil, err
		}
		if err := mr1.SetTable(tableBMPot, func(x float64) float64 {
			return math.Exp(-math.Sqrt(x))
		}, -8, 12); err != nil {
			return nil, err
		}
		if err := mr1.SetTable(tableDisp6Pot, func(x float64) float64 {
			return 1 / (x * x * x)
		}, -4, 16); err != nil {
			return nil, err
		}
		if err := mr1.SetTable(tableDisp8Pot, func(x float64) float64 {
			x2 := x * x
			return 1 / (x2 * x2)
		}, -4, 16); err != nil {
			return nil, err
		}
	}
	m.mr1 = mr1

	// WINE-2 session (Table 2 sequence).
	lib, err := wine2.NewLibrary(cfg.Wine)
	if err != nil {
		return nil, err
	}
	lib.SetFaultHook(cfg.FaultHook)
	if cfg.Heartbeat != nil {
		lib.SetHeartbeat(func() { cfg.Heartbeat("wine2") })
	}
	lib.SetPool(m.pool)
	wboards := cfg.WineBoards
	if wboards == 0 {
		wboards = cfg.Wine.Boards()
	}
	if err := lib.AllocateBoards(wboards); err != nil {
		return nil, err
	}
	if err := lib.InitializeBoards(); err != nil {
		return nil, err
	}
	m.wine = lib

	if err := m.loadCoefficients(); err != nil {
		return nil, err
	}
	return m, nil
}

// loadCoefficients fills the MDGRAPE-2 coefficient RAMs for the two NaCl
// species.
func (m *Machine) loadCoefficients() error {
	p := m.cfg.Ewald
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	var err error
	m.coCoulomb, err = mdgrape2.NewCoeffs(tosifumi.NumSpecies, aC, 0)
	if err != nil {
		return err
	}
	m.coBM, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD6, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD8, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coBMPot, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD6Pot, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	m.coD8Pot, _ = mdgrape2.NewCoeffs(tosifumi.NumSpecies, 0, 0)
	tf := m.pot
	rho2 := tf.Rho * tf.Rho
	for i := 0; i < tosifumi.NumSpecies; i++ {
		for j := i; j < tosifumi.NumSpecies; j++ {
			si, sj := tosifumi.Species(i), tosifumi.Species(j)
			qq := tosifumi.Charge(si) * tosifumi.Charge(sj)
			m.coCoulomb.Set(i, j, aC, qq)
			bm := tf.A[i][j] * tf.B * math.Exp((tf.Sigma[i]+tf.Sigma[j])/tf.Rho)
			m.coBM.Set(i, j, 1/rho2, bm/rho2)
			m.coD6.Set(i, j, 1, -6*tf.C[i][j])
			m.coD8.Set(i, j, 1, -8*tf.D[i][j])
			m.coBMPot.Set(i, j, 1/rho2, bm)
			m.coD6Pot.Set(i, j, 1, -tf.C[i][j])
			m.coD8Pot.Set(i, j, 1, -tf.D[i][j])
		}
	}
	return nil
}

// Waves returns the wavevector set in use.
func (m *Machine) Waves() []ewald.Wave { return m.waves }

// MDGStats returns the MDGRAPE-2 work counters.
func (m *Machine) MDGStats() mdgrape2.Stats { return m.mr1.System().Stats() }

// WineStats returns the WINE-2 work counters.
func (m *Machine) WineStats() wine2.Stats { return m.wine.System().Stats() }

// Free releases both backend sessions.
func (m *Machine) Free() error {
	if err := m.mr1.Free(); err != nil {
		return err
	}
	return m.wine.FreeBoards()
}

// InvalidateGeometry drops the cached j-set so the next Forces call rebuilds
// it — the hook for external position rewrites (checkpoint restore) that the
// Verlet-skin displacement test cannot be trusted to catch (a particle moved
// by a near-multiple of the box looks stationary under minimum image).
func (m *Machine) InvalidateGeometry() { m.haveJSet = false }

// JSetStats returns how many Forces calls rebuilt the sorted j-set and how
// many reused it under the Verlet-skin bound.
func (m *Machine) JSetStats() (rebuilds, reuses int) { return m.jsetRebuilds, m.jsetReuses }

// ensureScale keeps the per-i Coulomb prefactor slices sized to n. The
// prefactors depend only on the Ewald parameters, so they are built once and
// reused every step.
func (m *Machine) ensureScale(n int) {
	if len(m.scale) == n {
		return
	}
	p := m.cfg.Ewald
	m.scale = make([]float64, n)
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	for i := range m.scale {
		m.scale[i] = pref
	}
	m.potScale = make([]float64, n)
	ppref := units.Coulomb * p.Alpha / p.L
	for i := range m.potScale {
		m.potScale[i] = ppref
	}
}

// jset returns the j-side memory image, rebuilding the cell sort only when
// the Verlet-skin bound has been violated: the grid covers RCut+Skin, so the
// cell assignment (and hence the candidate pair walk) stays valid until some
// particle has moved more than Skin/2 from its position at the last rebuild.
// Within that bound only the stored positions are refreshed. With Skin = 0
// every call rebuilds and the layout is bit-identical to a fresh sort.
func (m *Machine) jset(s *md.System) (*mdgrape2.JSet, error) {
	if m.haveJSet && len(m.refPos) == s.N() && m.maxDisp2(s.Pos) <= (m.cfg.Skin/2)*(m.cfg.Skin/2) {
		js, err := m.jsb.Refresh(s.Pos)
		if err != nil {
			return nil, err
		}
		m.jsetReuses++
		m.js = js
		return js, nil
	}
	js, err := m.jsb.Build(s.Pos, s.Type, m.pool)
	if err != nil {
		return nil, err
	}
	if len(m.refPos) != s.N() {
		m.refPos = make([]vec.V, s.N())
	}
	copy(m.refPos, s.Pos)
	m.haveJSet = true
	m.jsetRebuilds++
	m.js = js
	return js, nil
}

// maxDisp2 returns the largest squared minimum-image displacement of any
// particle from the reference positions of the last j-set rebuild (shared
// with the decomposed session, which applies the same rule driver-side).
func (m *Machine) maxDisp2(pos []vec.V) float64 {
	return maxDisp2(m.cfg.Ewald.L, pos, m.refPos)
}

// realPasses fills the per-step pass descriptors of the fused real-space
// sweep, in the fixed reduction order Coulomb + Born–Mayer + r⁻⁶ + r⁻⁸.
func (m *Machine) realPasses() []mdgrape2.ForcePass {
	m.passes = [4]mdgrape2.ForcePass{
		{Table: tableCoulomb, Co: m.coCoulomb, ScaleI: m.scale},
		{Table: tableBM, Co: m.coBM},
		{Table: tableDisp6, Co: m.coD6},
		{Table: tableDisp8, Co: m.coD8},
	}
	return m.passes[:]
}

// Forces implements md.ForceField: the per-step flow of §3.1 — send
// positions to both backends, real-space forces from MDGRAPE-2 (four kernel
// passes), wavenumber-space forces from WINE-2, host combines and adds the
// self-energy bookkeeping. With cfg.Pipeline the wavenumber pass runs
// concurrently with the real-space work and the four real-space passes fuse
// into one sweep; the combined forces are bit-identical either way because
// the reduction order is fixed: Coulomb + BM + r⁻⁶ + r⁻⁸, then + wave.
//
//mdm:stepflow -- hot-path root: the per-step force evaluation of §3.1; everything it reaches must stay deterministic and allocation-free
func (m *Machine) Forces(s *md.System) ([]vec.V, float64, error) {
	p := m.cfg.Ewald
	if s.L != p.L {
		return nil, 0, fmt.Errorf("core: system box %g differs from machine box %g", s.L, p.L)
	}
	n := s.N()

	// The j-side memory image: all particles, sorted by cell (reused across
	// steps under the Verlet-skin bound).
	js, err := m.jset(s)
	if err != nil {
		return nil, 0, err
	}
	m.ensureScale(n)

	// Declare the wavenumber block size before launching anything: SetNN
	// mutates the wine session, so it stays on the calling goroutine.
	if err := m.wine.SetNN(n); err != nil {
		return nil, 0, err
	}

	var forces []vec.V
	var wavePot float64
	if m.cfg.Pipeline {
		// Overlap the two engines, §3.1: WINE-2 works the wavenumber sum
		// while MDGRAPE-2 (and its host loops) work the real-space sweep.
		// The join is unconditional — no return path may leave the pass in
		// flight (the recovery layer tears the machine down on failure).
		//mdm:hotallocok -- one pipeline launch per step by design; the closure capture is the overlap mechanism and fits the ~10 allocs/step budget
		go func() {
			fc, wp, werr := m.wine.CalcForceAndPotWavepartCoordsInto(p, m.waves, s.Pos, s.Charge, m.wineFC)
			m.wineDone <- wineResult{fc: fc, pot: wp, err: werr}
		}()
		fc, mdgErr := m.mr1.CalcVDWFusedInto(m.realPasses(), s.Pos, s.Type, js, m.realFC)
		res := <-m.wineDone
		if res.fc.Len() != 0 {
			m.wineFC = res.fc // keep the planes even on an error path
		}
		if fc.Len() != 0 {
			m.realFC = fc
		}
		if mdgErr != nil {
			// Real-space error wins when both engines fail: the serial path
			// surfaces the MDGRAPE-2 passes first, and the recovery ladder
			// keys on that ordering.
			return nil, 0, fmt.Errorf("core: real-space sweep: %w", mdgErr)
		}
		if res.err != nil {
			return nil, 0, fmt.Errorf("core: wavenumber pass: %w", res.err)
		}
		wavePot = res.pot
		// Combine on the planes in the fixed reduction order (real + wave) —
		// componentwise float64 adds, bit-identical to the AoS vec.Add loop —
		// then interleave once into the AoS []vec.V the md boundary expects.
		wx, wy, wz := res.fc.X, res.fc.Y, res.fc.Z
		for i := range fc.X {
			fc.X[i] += wx[i]
			fc.Y[i] += wy[i]
			fc.Z[i] += wz[i]
		}
		//mdm:hotallocok -- the one fresh output slice per step the md.ForceField contract requires; every intermediate buffer is reused
		forces = fc.AppendAoS(make([]vec.V, 0, n))
	} else if m.fuse {
		// Fused-serial path (batch driver): one four-table sweep, then the
		// wavenumber pass, back to back on the calling goroutine. Bit-identical
		// to both other paths — same fixed reduction order on the same planes.
		fc, err := m.mr1.CalcVDWFusedInto(m.realPasses(), s.Pos, s.Type, js, m.realFC)
		if err != nil {
			return nil, 0, fmt.Errorf("core: real-space sweep: %w", err)
		}
		m.realFC = fc
		wfc, wp, err := m.wine.CalcForceAndPotWavepartCoordsInto(p, m.waves, s.Pos, s.Charge, m.wineFC)
		if err != nil {
			return nil, 0, fmt.Errorf("core: wavenumber pass: %w", err)
		}
		m.wineFC = wfc
		wavePot = wp
		for i := range fc.X {
			fc.X[i] += wfc.X[i]
			fc.Y[i] += wfc.Y[i]
			fc.Z[i] += wfc.Z[i]
		}
		//mdm:hotallocok -- the one fresh output slice per step the md.ForceField contract requires; every intermediate buffer is reused
		forces = fc.AppendAoS(make([]vec.V, 0, n))
	} else {
		// Sequential path: four real-space passes back to back, then the
		// wavenumber pass.
		forces, err = m.mr1.CalcVDWBlock2(tableCoulomb, m.coCoulomb, s.Pos, s.Type, m.scale, js)
		if err != nil {
			return nil, 0, fmt.Errorf("core: Coulomb real-space pass: %w", err)
		}
		for _, pass := range []struct {
			table string
			co    *mdgrape2.Coeffs
		}{
			{tableBM, m.coBM},
			{tableDisp6, m.coD6},
			{tableDisp8, m.coD8},
		} {
			f, err := m.mr1.CalcVDWBlock2(pass.table, pass.co, s.Pos, s.Type, nil, js)
			if err != nil {
				return nil, 0, fmt.Errorf("core: %s pass: %w", pass.table, err)
			}
			for i := range forces {
				forces[i] = forces[i].Add(f[i])
			}
		}
		var wf []vec.V
		wf, wavePot, err = m.wine.CalcForceAndPotWavepartInto(p, m.waves, s.Pos, s.Charge, m.wineForces)
		if err != nil {
			return nil, 0, fmt.Errorf("core: wavenumber pass: %w", err)
		}
		m.wineForces = wf
		for i := range forces {
			forces[i] = forces[i].Add(wf[i])
		}
	}

	// Potential-energy bookkeeping (every PotentialEvery calls, like the
	// paper's every-100-steps evaluation), either on the host in float64 or
	// through the MDGRAPE-2 potential mode.
	if m.potCalls%m.cfg.PotentialEvery == 0 {
		var realPot float64
		if m.cfg.HardwarePotential {
			realPot, err = m.hardwarePotential(s, js)
			if err != nil {
				return nil, 0, fmt.Errorf("core: hardware potential: %w", err)
			}
		} else {
			realPot = m.hostPotential(s, js)
		}
		m.lastPot = realPot + wavePot + ewald.SelfEnergy(p, s.Charge)
	}
	m.potCalls++
	return forces, m.lastPot, nil
}

// hardwarePotential evaluates the real-space potential on the MDGRAPE-2
// potential mode: four φ-table passes over the same 27-cell pair set as the
// force passes, halved because every unordered pair is visited twice.
func (m *Machine) hardwarePotential(s *md.System, js *mdgrape2.JSet) (float64, error) {
	m.ensureScale(s.N())
	total := 0.0
	for _, pass := range []struct {
		table string
		co    *mdgrape2.Coeffs
		scale []float64
	}{
		{tableCoulombPot, m.coCoulomb, m.potScale},
		{tableBMPot, m.coBMPot, nil},
		{tableDisp6Pot, m.coD6Pot, nil},
		{tableDisp8Pot, m.coD8Pot, nil},
	} {
		pots, err := m.mr1.System().ComputePotentials(pass.table, pass.co, s.Pos, s.Type, pass.scale, js)
		if err != nil {
			return 0, fmt.Errorf("%s pass: %w", pass.table, err)
		}
		for _, pe := range pots {
			total += pe
		}
	}
	return total / 2, nil
}

// hostPotential evaluates the real-space Coulomb and short-range potential
// energy in float64 on the host. It walks the same 27-cell pair set as the
// MDGRAPE-2 force passes (which apply no r_cut test, §2.2), so the potential
// stays consistent with the forces — the condition for energy conservation.
// The walk reuses the step's shared j-set layout and neighbor table, saving
// a second cell sort and the per-cell neighbor enumeration.
func (m *Machine) hostPotential(s *md.System, js *mdgrape2.JSet) float64 {
	p := m.cfg.Ewald
	tf := m.pot
	pot := 0.0
	js.Sorted.ForEachOrderedPairTable(m.jsb.NeighborTable(), func(i, j int, rij vec.V) {
		r2 := rij.Norm2()
		if r2 == 0 {
			return
		}
		oi, oj := js.Sorted.Order[i], js.Sorted.Order[j]
		pot += p.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
		pot += tf.ShortEnergy(tosifumi.Species(s.Type[oi]), tosifumi.Species(s.Type[oj]), rij.Norm())
	})
	return pot / 2
}

// machineRealPotential is the 27-cell (cutoff-free) real-space potential over
// a freshly sorted layout (the parallel path, which has no shared j-set).
func machineRealPotential(p ewald.Params, grid *cellindex.Grid, tf *tosifumi.Potential, s *md.System) float64 {
	return machineRealPotentialSorted(p, cellindex.Sort(grid, s.Pos), tf, s)
}

// machineRealPotentialSorted walks every ordered 27-cell pair of the sorted
// layout; each unordered pair is visited twice, so the sum is halved. True
// self pairs (r = 0) contribute nothing, as in the pipelines.
func machineRealPotentialSorted(p ewald.Params, sorted *cellindex.Sorted, tf *tosifumi.Potential, s *md.System) float64 {
	pot := 0.0
	sorted.ForEachOrderedPair(func(i, j int, rij vec.V) {
		r2 := rij.Norm2()
		if r2 == 0 {
			return
		}
		oi, oj := sorted.Order[i], sorted.Order[j]
		pot += p.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
		pot += tf.ShortEnergy(tosifumi.Species(s.Type[oi]), tosifumi.Species(s.Type[oj]), rij.Norm())
	})
	return pot / 2
}
