package core

import (
	"fmt"
	"math"
	"slices"

	"mdm/internal/cellindex"
	"mdm/internal/domain"
	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/mpi"
	"mdm/internal/parallelize"
	"mdm/internal/soa"
	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// ParallelRun is a persistent multi-step rank session for the §4 process
// layout: the MPI world, the spatial decomposition, every rank's MDGRAPE-2 /
// WINE-2 session, j-set layout, and exchange buffers live across an
// integrator run instead of being rebuilt per force call.
//
// Ownership is spatial and persistent. The global cell grid (side r_cut +
// skin, exactly the serial Machine's discretization) is split into
// contiguous cell blocks, one per real-space rank (domain.Blocks); a rank
// owns the particles whose cell it owns. Between neighbor-list rebuilds
// ownership is frozen: reuse steps stream only ghost *positions* (tag
// TagGhostPos, slab-allocated SoA planes, zero steady-state allocations).
// On a rebuild step particles that crossed a domain face migrate to their
// new owner (tag TagMigrate, global indices only), and the full ghost shell
// — position, species, global index per particle — is re-exchanged (tag
// TagHalo). The rebuild schedule is the serial Verlet-skin rule (max
// displacement > skin/2 since the last rebuild), decided on the driver so
// every rank agrees.
//
// Determinism: because every cell is filled by exactly one rank and owned
// particle lists are kept ascending by global index, each rank's local
// cell-sorted layout has the same within-cell particle order as the serial
// machine's. The per-particle real-space force is therefore bit-identical to
// the serial machine at any rank count, and with a single wavenumber rank
// the wavenumber path is the serial one too, making whole trajectories
// bit-identical to the serial goldens. With several wavenumber ranks the
// structure-factor reduction reorders float64 sums; that path is pinned by
// an energy-drift parity gate instead (see session tests and DESIGN.md §15).
type ParallelRun struct {
	world        *mpi.World
	cfg          MachineConfig
	nReal, nWave int

	grid   *cellindex.Grid
	blocks *domain.Blocks
	co     *machineCoeffsSet
	pref   float64
	waves  []ewald.Wave
	tf     *tosifumi.Potential

	// needGhost[r][c] reports whether real rank r needs cell c as a ghost.
	// ghostSrc[r] / ghostDst[r]: ranks r receives ghosts from / sends ghosts
	// to, ascending. All three are static block-geometry facts.
	needGhost [][]bool
	ghostSrc  [][]int
	ghostDst  [][]int

	real []*realRankState
	wave []*waveRankState

	// Driver state.
	n        int     // particle count, fixed at the first step
	needInit bool    // full ownership (re)derivation on the next step
	refPos   []vec.V // positions at the last rebuild (the skin reference)
	rebuild  bool    // this step rebuilds (set by the driver, read by ranks)
	initStep bool    // this step derives ownership from scratch

	potCalls int
	lastPot  float64
	wavePot  float64 // written by rank 0 during Run, read by the driver after
	out      []vec.V // written by rank 0 during Run

	potPool   *parallelize.Pool
	potSorter *cellindex.Sorter
	potSorted *cellindex.Sorted
	potNbt    *cellindex.NeighborTable
	potDirty  bool

	res ParallelResult

	rebuilds, reuses int
}

// realRankState is the persistent state of one real-space (domain) rank.
type realRankState struct {
	rank int
	comm *mpi.Comm
	m    *mdgrape2.MR1
	pool *parallelize.Pool
	jsb  *mdgrape2.JSetBuilder
	js   *mdgrape2.JSet

	owned []int // global indices of owned particles, ascending

	// Local j-side arrays: owned particles first, then ghosts grouped by
	// source rank (ascending), each group in the sender's (ascending) order.
	locPos []vec.V
	locTyp []int
	nOwn   int

	// Sender-side scratch, indexed by destination rank. sendIdx is the
	// per-destination ghost list frozen at the last rebuild; haloBuf packs
	// stride-5 rebuild records, posBuf packs the 3 SoA position planes of a
	// reuse step back to back in one slab.
	sendIdx [][]int
	haloBuf [][]float64
	posBuf  [][]float64
	migBuf  [][]int

	ghostCnt []int // ghosts received per source rank at the last rebuild

	scale  []float64
	passes [4]mdgrape2.ForcePass
	fc     soa.Coords
	ship   []float64
}

// waveRankState is the persistent state of one wavenumber rank.
type waveRankState struct {
	rank   int // world rank
	comm   *mpi.Comm
	lib    *wine2.Library
	lo, hi int // global particle stripe
	fc     soa.Coords
	ship   []float64
}

// NewParallelRun validates the layout and builds the persistent rank
// sessions. The first Forces call derives the initial ownership; Free
// releases every rank's boards.
func NewParallelRun(world *mpi.World, cfg MachineConfig, nReal, nWave int) (*ParallelRun, error) {
	if nReal < 1 || nWave < 1 {
		return nil, fmt.Errorf("core: need at least one process of each kind (got %d real, %d wave)", nReal, nWave)
	}
	if world.Size() != nReal+nWave {
		return nil, fmt.Errorf("core: world size %d != %d real + %d wave", world.Size(), nReal, nWave)
	}
	if cfg.PotentialEvery < 1 {
		cfg.PotentialEvery = 1
	}
	p := cfg.Ewald
	// The serial machine's discretization: cell side ≥ r_cut + skin, so a
	// frozen neighbor list stays valid until some displacement exceeds
	// skin/2. Every rank shares this one global grid — the keystone of the
	// bit-identity argument.
	grid, err := cellindex.NewGrid(p.L, p.RCut+cfg.Skin)
	if err != nil {
		return nil, err
	}
	blocks, err := domain.NewBlocks(grid.N, nReal)
	if err != nil {
		return nil, err
	}
	co, err := machineCoeffs(p)
	if err != nil {
		return nil, err
	}
	pr := &ParallelRun{
		world:    world,
		cfg:      cfg,
		nReal:    nReal,
		nWave:    nWave,
		grid:     grid,
		blocks:   blocks,
		co:       co,
		pref:     units.Coulomb * math.Pow(p.Alpha/p.L, 3),
		waves:    ewald.Waves(p),
		tf:       tosifumi.Default(),
		needInit: true,
		potPool:  parallelize.New(cfg.Workers),
	}
	pr.potSorter = cellindex.NewSorter(grid)
	pr.potNbt = cellindex.BuildNeighborTable(grid, pr.potPool)

	// Static ghost geometry: which cells each rank needs, hence which rank
	// pairs exchange ghosts. Both sides derive the same lists, so the
	// message pattern is deterministic and deadlock-free.
	nc := grid.NumCells()
	pr.needGhost = make([][]bool, nReal)
	pr.ghostSrc = make([][]int, nReal)
	pr.ghostDst = make([][]int, nReal)
	srcSet := make([]bool, nReal)
	for r := 0; r < nReal; r++ {
		pr.needGhost[r] = make([]bool, nc)
		for i := range srcSet {
			srcSet[i] = false
		}
		for _, c := range blocks.GhostCells(r) {
			pr.needGhost[r][c] = true
			srcSet[blocks.Owner(c)] = true
		}
		// Ascending rank iteration keeps both lists sorted, so every rank
		// derives the same deterministic message order.
		pr.ghostSrc[r] = make([]int, 0, nReal)
		for src := 0; src < nReal; src++ {
			if srcSet[src] {
				pr.ghostSrc[r] = append(pr.ghostSrc[r], src)
			}
		}
	}
	for src := 0; src < nReal; src++ {
		pr.ghostDst[src] = make([]int, 0, nReal)
		for r := 0; r < nReal; r++ {
			if slices.Contains(pr.ghostSrc[r], src) {
				pr.ghostDst[src] = append(pr.ghostDst[src], r)
			}
		}
	}

	free := func() { _ = pr.Free() }
	pr.real = make([]*realRankState, 0, nReal)
	pr.wave = make([]*waveRankState, 0, nWave)
	for r := 0; r < nReal; r++ {
		comm, err := world.Comm(r)
		if err != nil {
			free()
			return nil, err
		}
		m, err := newRankMDG(cfg, nReal, r)
		if err != nil {
			free()
			return nil, err
		}
		pool := parallelize.New(cfg.Workers)
		m.SetPool(pool)
		rr := &realRankState{
			rank:     r,
			comm:     comm,
			m:        m,
			pool:     pool,
			jsb:      mdgrape2.NewJSetBuilder(grid, pool),
			sendIdx:  make([][]int, nReal),
			haloBuf:  make([][]float64, nReal),
			posBuf:   make([][]float64, nReal),
			migBuf:   make([][]int, nReal),
			ghostCnt: make([]int, len(pr.ghostSrc[r])),
		}
		pr.real = append(pr.real, rr)
	}
	for w := 0; w < nWave; w++ {
		rank := nReal + w
		comm, err := world.Comm(rank)
		if err != nil {
			free()
			return nil, err
		}
		lib, err := newRankWine(cfg, nWave, w)
		if err != nil {
			free()
			return nil, err
		}
		lib.SetPool(parallelize.New(cfg.Workers))
		members := make([]int, nWave)
		for i := range members {
			members[i] = nReal + i
		}
		lib.SetMPICommunity(&groupComm{c: comm, members: members, me: w})
		pr.wave = append(pr.wave, &waveRankState{rank: rank, comm: comm, lib: lib})
	}
	return pr, nil
}

// Free releases every rank's hardware sessions.
func (pr *ParallelRun) Free() error {
	var first error
	for _, rr := range pr.real {
		if rr.m != nil {
			if err := rr.m.Free(); err != nil && first == nil {
				first = err
			}
			rr.m = nil
		}
	}
	for _, wr := range pr.wave {
		if wr.lib != nil {
			if err := wr.lib.FreeBoards(); err != nil && first == nil {
				first = err
			}
			wr.lib = nil
		}
	}
	return first
}

// InvalidateGeometry drops all cached position-dependent state: ownership,
// ghost lists, j-set layouts, and the skin reference. The next step
// re-derives the decomposition from scratch — required after an external
// position rewrite (checkpoint restore) and after any failed step, which may
// have half-applied a migration.
func (pr *ParallelRun) InvalidateGeometry() { pr.needInit = true }

// JSetStats reports how many steps rebuilt the decomposition (migration +
// full ghost exchange) and how many reused it (ghost position streaming).
func (pr *ParallelRun) JSetStats() (rebuilds, reuses int) { return pr.rebuilds, pr.reuses }

// Forces implements md.ForceField on the persistent session.
func (pr *ParallelRun) Forces(s *md.System) ([]vec.V, float64, error) {
	res, err := pr.Step(s)
	if err != nil {
		return nil, 0, err
	}
	return res.Forces, res.Potential, nil
}

// Step runs one decomposed force evaluation and returns the assembled
// result. The returned value aliases session-owned bookkeeping (it is
// overwritten by the next Step); the Forces slice itself is fresh each call,
// per the md.ForceField contract.
//
//mdm:stepflow -- hot-path root: the decomposed per-step force evaluation; everything it reaches must stay deterministic and allocation-free
func (pr *ParallelRun) Step(s *md.System) (*ParallelResult, error) {
	p := pr.cfg.Ewald
	if s.L != p.L {
		return nil, fmt.Errorf("core: system box %g differs from machine box %g", s.L, p.L)
	}
	if pr.n != 0 && s.N() != pr.n {
		return nil, fmt.Errorf("core: session built for %d particles, got %d", pr.n, s.N())
	}
	if pr.n == 0 {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		pr.n = s.N()
	}

	// The rebuild decision is the serial Machine's Verlet-skin rule, made
	// once on the driver so all ranks agree on the step's protocol.
	skin2 := (pr.cfg.Skin / 2) * (pr.cfg.Skin / 2)
	pr.initStep = pr.needInit || len(pr.refPos) != pr.n
	pr.rebuild = pr.initStep || maxDisp2(p.L, s.Pos, pr.refPos) > skin2

	before := pr.world.Stats()
	runErr := pr.world.Run(func(c *mpi.Comm) error {
		if c.Rank() < pr.nReal {
			return pr.realStep(pr.real[c.Rank()], s)
		}
		return pr.waveStep(pr.wave[c.Rank()-pr.nReal], s)
	})
	if runErr != nil {
		// A failed step may have half-applied a migration; rebuild the
		// decomposition from scratch on the next attempt.
		pr.needInit = true
		return nil, runErr
	}
	pr.needInit = false
	if pr.rebuild {
		if len(pr.refPos) != pr.n {
			pr.refPos = make([]vec.V, pr.n)
		}
		copy(pr.refPos, s.Pos)
		pr.potDirty = true
		pr.rebuilds++
	} else {
		pr.reuses++
	}

	// Potential bookkeeping on the driver, every PotentialEvery calls like
	// the serial machine: the real-space walk shares the cell assignment of
	// the last rebuild (sorted from the skin reference positions, refreshed
	// to the current ones), so the pair set — and the energy — match the
	// serial host potential bit for bit.
	if pr.potCalls%pr.cfg.PotentialEvery == 0 {
		if pr.potDirty {
			pr.potSorted = pr.potSorter.SortInto(pr.potSorted, pr.refPos, pr.potPool)
			pr.potDirty = false
		}
		pr.potSorted.Refresh(s.Pos)
		realPot := pr.realPotential(s)
		pr.lastPot = realPot + pr.wavePot + ewald.SelfEnergy(p, s.Charge)
	}
	pr.potCalls++

	after := pr.world.Stats()
	pr.res.Forces = pr.out
	pr.res.Potential = pr.lastPot
	pr.res.Traffic = mpi.Stats{
		Messages: after.Messages - before.Messages,
		Bytes:    after.Bytes - before.Bytes,
	}
	pr.res.TrafficByTag = nil
	pr.out = nil
	return &pr.res, nil
}

// realPotential walks every ordered 27-cell pair of the driver's sorted
// layout — the same pair set as the rank force passes — in float64, exactly
// like Machine.hostPotential.
func (pr *ParallelRun) realPotential(s *md.System) float64 {
	p := pr.cfg.Ewald
	tf := pr.tf
	sorted := pr.potSorted
	pot := 0.0
	sorted.ForEachOrderedPairTable(pr.potNbt, func(i, j int, rij vec.V) {
		r2 := rij.Norm2()
		if r2 == 0 {
			return
		}
		oi, oj := sorted.Order[i], sorted.Order[j]
		pot += p.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
		pot += tf.ShortEnergy(tosifumi.Species(s.Type[oi]), tosifumi.Species(s.Type[oj]), rij.Norm())
	})
	return pot / 2
}

// wireError wraps a malformed incoming payload as a link fault, so the
// recovery ladder treats it like any other transient message corruption
// (retryable; the resend is clean).
//
//mdm:hotallocok -- constructed only when an incoming payload fails validation, never on the clean step path
func wireError(src, dst int, format string, args ...any) error {
	return fmt.Errorf("core: %s: %w", fmt.Sprintf(format, args...), &fault.LinkError{Src: src, Dst: dst})
}

// realStep is the per-step body of one real-space rank: migrate (rebuild
// steps), exchange or stream ghosts, run the fused MDGRAPE-2 sweep over the
// owned block, ship (index, force) records to rank 0.
func (pr *ParallelRun) realStep(rr *realRankState, s *md.System) error {
	me := rr.rank
	c := rr.comm
	n := pr.n

	switch {
	case pr.initStep:
		// Derive ownership from scratch: scan all positions once. No
		// messages — every rank sees the same assignment.
		rr.owned = rr.owned[:0]
		for g := 0; g < n; g++ {
			if pr.blocks.Owner(pr.grid.CellOf(s.Pos[g])) == me {
				rr.owned = append(rr.owned, g)
			}
		}
	case pr.rebuild:
		// Migration: re-key my particles by cell; departures go straight to
		// their new owner. Every real rank pair exchanges a (possibly
		// empty) index list — a particle can cross several faces between
		// rebuilds, so arrivals are not restricted to block neighbors.
		for other := 0; other < pr.nReal; other++ {
			rr.migBuf[other] = rr.migBuf[other][:0]
		}
		keep := rr.owned[:0]
		for _, g := range rr.owned {
			owner := pr.blocks.Owner(pr.grid.CellOf(s.Pos[g]))
			if owner == me {
				keep = append(keep, g)
			} else {
				rr.migBuf[owner] = append(rr.migBuf[owner], g)
			}
		}
		rr.owned = keep
		for other := 0; other < pr.nReal; other++ {
			if other == me {
				continue
			}
			if err := c.Send(other, TagMigrate, rr.migBuf[other]); err != nil {
				return err
			}
		}
		for other := 0; other < pr.nReal; other++ {
			if other == me {
				continue
			}
			data, err := c.Recv(other, TagMigrate) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
			if err != nil {
				return err
			}
			arrivals, ok := data.([]int)
			if !ok {
				return wireError(other, me, "rank %d expected migration indices from %d, got %T", me, other, data)
			}
			for _, g := range arrivals {
				if g < 0 || g >= n {
					return wireError(other, me, "rank %d: migrated index %d out of range [0,%d)", me, g, n)
				}
				rr.owned = append(rr.owned, g)
			}
		}
		// Deterministic merge: ownership is a set keyed by global index,
		// independent of message arrival interleaving.
		slices.Sort(rr.owned)
	}

	if pr.rebuild {
		if err := pr.exchangeGhosts(rr, s); err != nil {
			return err
		}
		js, err := rr.jsb.Build(rr.locPos, rr.locTyp, rr.pool)
		if err != nil {
			return err
		}
		rr.js = js
		if cap(rr.scale) < rr.nOwn {
			rr.scale = make([]float64, rr.nOwn)
		}
		rr.scale = rr.scale[:rr.nOwn]
		for i := range rr.scale {
			rr.scale[i] = pr.pref
		}
	} else {
		if err := pr.streamGhosts(rr, s); err != nil {
			return err
		}
		js, err := rr.jsb.Refresh(rr.locPos)
		if err != nil {
			return err
		}
		rr.js = js
	}

	// The fused four-pass sweep over the owned block, identical pass and
	// reduction order to the serial machine.
	rr.passes = [4]mdgrape2.ForcePass{
		{Table: tableCoulomb, Co: pr.co.coulomb, ScaleI: rr.scale},
		{Table: tableBM, Co: pr.co.bm},
		{Table: tableDisp6, Co: pr.co.d6},
		{Table: tableDisp8, Co: pr.co.d8},
	}
	fc, err := rr.m.CalcVDWFusedInto(rr.passes[:], rr.locPos[:rr.nOwn], rr.locTyp[:rr.nOwn], rr.js, rr.fc)
	if err != nil {
		return err
	}
	rr.fc = fc

	// Ship (globalIndex, force) records to rank 0.
	rr.ship = rr.ship[:0]
	for k, g := range rr.owned {
		rr.ship = append(rr.ship, float64(g), fc.X[k], fc.Y[k], fc.Z[k])
	}
	if err := c.Send(0, TagForces, rr.ship); err != nil {
		return err
	}
	if me == 0 {
		return pr.assemble(rr, s)
	}
	return nil
}

// exchangeGhosts runs the full rebuild-step halo exchange: stride-5 records
// (x, y, z, species, globalIndex) for every owned particle sitting in a cell
// some other rank needs, then rebuilds the local particle arrays (owned
// first, then ghosts grouped by ascending source rank).
func (pr *ParallelRun) exchangeGhosts(rr *realRankState, s *md.System) error {
	me := rr.rank
	c := rr.comm
	n := pr.n

	for _, dst := range pr.ghostDst[me] {
		rr.sendIdx[dst] = rr.sendIdx[dst][:0]
	}
	for _, g := range rr.owned {
		cell := pr.grid.CellOf(s.Pos[g])
		for _, dst := range pr.ghostDst[me] {
			if pr.needGhost[dst][cell] {
				rr.sendIdx[dst] = append(rr.sendIdx[dst], g)
			}
		}
	}
	for _, dst := range pr.ghostDst[me] {
		idx := rr.sendIdx[dst]
		buf := rr.haloBuf[dst]
		if cap(buf) < haloStride*len(idx) {
			buf = make([]float64, 0, haloStride*len(idx))
		}
		buf = buf[:0]
		for _, g := range idx {
			buf = append(buf, s.Pos[g].X, s.Pos[g].Y, s.Pos[g].Z, float64(s.Type[g]), float64(g))
		}
		rr.haloBuf[dst] = buf
		if err := c.Send(dst, TagHalo, buf); err != nil {
			return err
		}
	}

	rr.locPos = rr.locPos[:0]
	rr.locTyp = rr.locTyp[:0]
	for _, g := range rr.owned {
		rr.locPos = append(rr.locPos, s.Pos[g])
		rr.locTyp = append(rr.locTyp, s.Type[g])
	}
	rr.nOwn = len(rr.owned)
	for si, src := range pr.ghostSrc[me] {
		buf, err := c.RecvFloat64s(src, TagHalo) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
		if err != nil {
			return err
		}
		if len(buf)%haloStride != 0 {
			return wireError(src, me, "rank %d: halo payload length %d not a multiple of %d", me, len(buf), haloStride)
		}
		rr.ghostCnt[si] = len(buf) / haloStride
		for k := 0; k+haloStride <= len(buf); k += haloStride {
			typ := int(buf[k+3])
			gidx := int(buf[k+4])
			if gidx < 0 || gidx >= n {
				return wireError(src, me, "rank %d: ghost index %d out of range [0,%d)", me, gidx, n)
			}
			if typ < 0 || typ >= tosifumi.NumSpecies {
				return wireError(src, me, "rank %d: ghost species %d out of range [0,%d)", me, typ, tosifumi.NumSpecies)
			}
			rr.locPos = append(rr.locPos, vec.New(buf[k], buf[k+1], buf[k+2]))
			rr.locTyp = append(rr.locTyp, typ)
		}
	}
	return nil
}

// streamGhosts runs the reuse-step exchange: only ghost positions move, as
// three SoA planes packed back to back in one reused slab per destination.
// The ghost lists themselves are frozen since the last rebuild, so both
// sides already agree on counts and order.
func (pr *ParallelRun) streamGhosts(rr *realRankState, s *md.System) error {
	me := rr.rank
	c := rr.comm

	// Owned positions come straight from the integrator's arrays (the host
	// holds them, §4); ghosts must arrive over the wire.
	for k, g := range rr.owned {
		rr.locPos[k] = s.Pos[g]
	}

	for _, dst := range pr.ghostDst[me] {
		idx := rr.sendIdx[dst]
		cnt := len(idx)
		slab := rr.posBuf[dst]
		if cap(slab) < 3*cnt {
			slab = make([]float64, 3*cnt)
		}
		slab = slab[:3*cnt]
		planes := soa.Coords{X: slab[:cnt], Y: slab[cnt : 2*cnt], Z: slab[2*cnt:]}
		for k, g := range idx {
			planes.Set(k, s.Pos[g])
		}
		rr.posBuf[dst] = slab
		if err := c.Send(dst, TagGhostPos, slab); err != nil {
			return err
		}
	}
	off := rr.nOwn
	for si, src := range pr.ghostSrc[me] {
		buf, err := c.RecvFloat64s(src, TagGhostPos) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
		if err != nil {
			return err
		}
		cnt := rr.ghostCnt[si]
		if len(buf) != 3*cnt {
			return wireError(src, me, "rank %d: ghost position payload %d floats, want %d", me, len(buf), 3*cnt)
		}
		for k := 0; k < cnt; k++ {
			rr.locPos[off+k] = vec.New(buf[k], buf[cnt+k], buf[2*cnt+k])
		}
		off += cnt
	}
	return nil
}

// waveStep is the per-step body of one wavenumber rank: the WINE-2 library
// over this rank's particle stripe, with the group communicator reducing the
// structure factor when the group has more than one member.
func (pr *ParallelRun) waveStep(wr *waveRankState, s *md.System) error {
	p := pr.cfg.Ewald
	w := wr.rank - pr.nReal
	if pr.initStep {
		wr.lo = w * pr.n / pr.nWave
		wr.hi = (w + 1) * pr.n / pr.nWave
		if err := wr.lib.SetNN(max(wr.hi-wr.lo, 1)); err != nil {
			return err
		}
	}
	fc, pot, err := wr.lib.CalcForceAndPotWavepartCoordsInto(p, pr.waves, s.Pos[wr.lo:wr.hi], s.Charge[wr.lo:wr.hi], wr.fc)
	if err != nil {
		return err
	}
	wr.fc = fc
	wr.ship = wr.ship[:0]
	// Leading slot: the wavenumber potential (only wave rank 0 reports it,
	// to avoid double counting after the group reduction).
	if w == 0 {
		wr.ship = append(wr.ship, pot)
	} else {
		wr.ship = append(wr.ship, math.NaN())
	}
	for k := wr.lo; k < wr.hi; k++ {
		wr.ship = append(wr.ship, float64(k), fc.X[k-wr.lo], fc.Y[k-wr.lo], fc.Z[k-wr.lo])
	}
	return wr.comm.Send(0, TagForces, wr.ship)
}

// assemble gathers force contributions at world rank 0. Real-rank payloads
// (length ≡ 0 mod 4) carry each owned particle exactly once, so they are
// assignments; wave-rank payloads (length ≡ 1 mod 4, leading potential
// slot) add on top — the same real + wave reduction order as the serial
// combine, hence bit-identical sums.
func (pr *ParallelRun) assemble(rr *realRankState, s *md.System) error {
	c := rr.comm
	n := pr.n
	//mdm:hotallocok -- the one fresh output slice per step the md.ForceField contract requires; every exchange buffer is reused
	total := make([]vec.V, n)
	for src := 0; src < c.Size(); src++ {
		buf, err := c.RecvFloat64s(src, TagForces) //mdm:recvok -- world deadline (SetTimeout) bounds this receive
		if err != nil {
			return err
		}
		k := 0
		wavePayload := len(buf)%4 == 1
		if wavePayload {
			if !math.IsNaN(buf[0]) {
				pr.wavePot = buf[0]
			}
			k = 1
		} else if len(buf)%4 != 0 {
			return wireError(src, 0, "rank 0: force payload length %d not 4k or 4k+1", len(buf))
		}
		for ; k+4 <= len(buf); k += 4 {
			i := int(buf[k])
			if i < 0 || i >= n {
				return wireError(src, 0, "rank 0: force index %d out of range [0,%d)", i, n)
			}
			f := vec.New(buf[k+1], buf[k+2], buf[k+3])
			if wavePayload {
				total[i] = total[i].Add(f)
			} else {
				total[i] = f
			}
		}
	}
	pr.out = total
	return nil
}

// maxDisp2 returns the largest squared minimum-image displacement of any
// position from its reference.
func maxDisp2(l float64, pos, ref []vec.V) float64 {
	worst := 0.0
	for i := range pos {
		d := pos[i].Sub(ref[i])
		d.X -= l * math.Round(d.X/l)
		d.Y -= l * math.Round(d.Y/l)
		d.Z -= l * math.Round(d.Z/l)
		if d2 := d.Norm2(); d2 > worst {
			worst = d2
		}
	}
	return worst
}
