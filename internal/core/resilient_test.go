package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mpi"
	"mdm/internal/vec"
)

func TestResilientCleanRunMatchesMachine(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 21)
	p := smallParams(s.L)
	r, err := NewResilient(CurrentMachineConfig(p), RecoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	got, gotPot, err := r.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMachine(t, p)
	want, wantPot, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	if gotPot != wantPot {
		t.Errorf("potential %g != machine %g", gotPot, wantPot)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d: %v != machine %v", i, got[i], want[i])
		}
	}
	rep := r.Report()
	if rep.Steps != 1 || rep.Retries != 0 || rep.Fallback || len(rep.Events) != 0 {
		t.Errorf("clean run report = %+v", rep)
	}
}

func TestResilientTransientRetried(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 22)
	p := smallParams(s.L)
	// Per step the machine makes four MDGRAPE-2 pipeline calls and a WINE-2
	// DFT/IDFT pair; call-keyed events count per site.
	in, err := fault.ParseInjector("mdg:transient@call=2; wine2:transient@call=1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(CurrentMachineConfig(p), RecoveryConfig{Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	got, _, err := r.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMachine(t, p)
	want, _, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d: recovered forces deviate: %v != %v", i, got[i], want[i])
		}
	}
	rep := r.Report()
	if rep.Retries != 2 || rep.Fallback || rep.FallbackSteps != 0 {
		t.Errorf("report = %+v, want 2 retries and no fallback", rep)
	}
}

func TestResilientBoardDropRestripes(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 23)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.WineBoards = 4
	in, err := fault.ParseInjector("wine2:board-drop@call=1,board=2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(cfg, RecoveryConfig{Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	got, _, err := r.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	// Striping is pure partitioning, so the 3-board machine computes the
	// identical forces.
	m := newTestMachine(t, p)
	want, _, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d: post-restripe forces deviate", i)
		}
	}
	rep := r.Report()
	if rep.Restripes != 1 || rep.WineBoardsLost != 1 || rep.Fallback {
		t.Errorf("report = %+v, want one restripe", rep)
	}
}

func TestResilientFallbackWhenNoCapacity(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 24)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.MDGBoards = 1 // a single board: its dropout exhausts the machine
	in, err := fault.ParseInjector("mdg:board-drop@call=1,board=0")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(cfg, RecoveryConfig{Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	got, _, err := r.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReference(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d: fallback forces are not the reference path", i)
		}
	}
	rep := r.Report()
	if !rep.Fallback || rep.FallbackSteps != 1 || rep.MDGBoardsLost != 1 {
		t.Errorf("report = %+v, want permanent fallback", rep)
	}
	// The degradation is sticky: the next step is host-served too.
	if _, _, err := r.Forces(s); err != nil {
		t.Fatal(err)
	}
	if rep := r.Report(); rep.FallbackSteps != 2 {
		t.Errorf("FallbackSteps = %d after second step, want 2", rep.FallbackSteps)
	}
}

func TestResilientRetryBudgetFallsBackPerStep(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 25)
	p := smallParams(s.L)
	// Both the first evaluation and its single allowed retry hit transients.
	in, err := fault.ParseInjector("mdg:transient@call=1; mdg:transient@call=5")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(CurrentMachineConfig(p), RecoveryConfig{MaxRetries: 1, Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	if _, _, err := r.Forces(s); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.Retries != 1 || rep.FallbackSteps != 1 || rep.Fallback {
		t.Errorf("report = %+v, want 1 retry then a one-step fallback", rep)
	}
	// The next step runs on hardware again (the transients are consumed).
	if _, _, err := r.Forces(s); err != nil {
		t.Fatal(err)
	}
	if rep := r.Report(); rep.FallbackSteps != 1 {
		t.Errorf("FallbackSteps = %d, degraded mode leaked across steps", rep.FallbackSteps)
	}
}

func TestResilientGuardCatchesBitFlip(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 26)
	p := smallParams(s.L)
	// Flip a high exponent bit of one force component: the spike guard must
	// reject the step and the retry (flip consumed) must match a clean run.
	in, err := fault.ParseInjector("mdg:bitflip@call=1,word=10,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(CurrentMachineConfig(p), RecoveryConfig{
		Guards:   Guards{MaxForce: 100}, // eV/Å; honest forces are ~1
		Injector: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	got, _, err := r.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMachine(t, p)
	want, _, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d: guarded retry deviates from clean run", i)
		}
	}
	rep := r.Report()
	if rep.SuspectSteps != 1 || rep.Retries != 1 {
		t.Errorf("report = %+v, want 1 suspect step and 1 retry", rep)
	}
}

// chaosScenario is the acceptance schedule: one WINE-2 board dropout, one
// dropped MPI message, and one transient MDGRAPE-2 error, spread over a
// ≥200-step run. Events sit in distinct steps so the recovery report is
// bit-reproducible even on the concurrent parallel path.
const chaosScenario = "wine2:board-drop@step=40,board=3; mpi:drop@src=1,dst=0,n=3; mdg:transient@step=120"

// chaosRun integrates 210 NVE steps of 64-ion molten NaCl on the parallel
// machine (2 real + 1 wave processes) under the given scenario ("" for the
// fault-free baseline) and returns the energy drift and the recovery report.
func chaosRun(t *testing.T, scenario string) (float64, RunReport) {
	t.Helper()
	s := meltLike(t, 2, 5.64, 300, 27)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	world, err := mpi.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	world.SetTimeout(time.Second)
	rc := RecoveryConfig{}
	if scenario != "" {
		in, err := fault.ParseInjector(scenario)
		if err != nil {
			t.Fatal(err)
		}
		rc.Injector = in
	}
	r, err := NewResilientParallel(cfg, rc, world, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	it, err := md.NewIntegrator(s, r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(210, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	if rc.Injector != nil && rc.Injector.Remaining() != 0 {
		t.Errorf("%d scheduled faults never fired", rc.Injector.Remaining())
	}
	return rec.EnergyDrift(), r.Report()
}

func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e integrates 2×210 parallel MD steps")
	}
	cleanDrift, cleanRep := chaosRun(t, "")
	chaosDrift, chaosRep := chaosRun(t, chaosScenario)
	t.Logf("fault-free drift %.2e, chaos drift %.2e", cleanDrift, chaosDrift)
	t.Logf("chaos recovery: %+v", chaosRep)
	// Same tolerance as the fault-free run (TestParallelDrivesIntegrator's
	// 5e-4); all three faults are absorbed by retry/re-stripe, so the
	// trajectory — and therefore the drift — is essentially the clean one.
	const tol = 5e-4
	if cleanDrift > tol {
		t.Errorf("fault-free NVE drift %g > %g", cleanDrift, tol)
	}
	if chaosDrift > tol {
		t.Errorf("chaos NVE drift %g > %g", chaosDrift, tol)
	}
	if cleanRep.Retries != 0 || cleanRep.Restripes != 0 {
		t.Errorf("fault-free run recovered from something: %+v", cleanRep)
	}
	if chaosRep.Restripes != 1 || chaosRep.WineBoardsLost != 1 {
		t.Errorf("board dropout not re-striped: %+v", chaosRep)
	}
	if chaosRep.Retries < 2 {
		t.Errorf("dropped message + transient absorbed by %d retries, want ≥2: %+v", chaosRep.Retries, chaosRep)
	}
	if chaosRep.Fallback || chaosRep.FallbackSteps != 0 {
		t.Errorf("chaos run degraded to the host path: %+v", chaosRep)
	}
	if chaosRep.Steps != 211 { // initial force call + 210 steps
		t.Errorf("Steps = %d, want 211", chaosRep.Steps)
	}
}

func TestChaosReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check integrates 2×210 parallel MD steps")
	}
	_, a := chaosRun(t, chaosScenario)
	_, b := chaosRun(t, chaosScenario)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical scenario produced different reports:\n%+v\n%+v", a, b)
	}
}

// A rank erroring inside ParallelForces must cancel the group: the call
// returns the rank's error promptly instead of letting the peers wait out
// their full deadline mid-collective (the satellite fix).
func TestParallelForcesGroupCancel(t *testing.T) {
	s := meltLike(t, 1, 5.8, 300, 28)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	in, err := fault.ParseInjector("mdg:transient@call=1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultHook = in
	world, err := mpi.NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	world.SetTimeout(30 * time.Second) // cancellation must not need this
	start := time.Now()
	_, err = ParallelForces(world, cfg, 2, 2, s)
	var te *fault.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want the rank's TransientError", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("peers unwound in %v; group cancel should beat the 30s deadline", el)
	}
	// The aborted step's stragglers drain, and the world stays usable.
	world.Reset()
	if _, err := ParallelForces(world, cfg, 2, 2, s); err != nil {
		t.Fatalf("world unusable after canceled step: %v", err)
	}
}

var _ = vec.V{} // keep the import if assertions above change
