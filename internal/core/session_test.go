package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mpi"
	"mdm/internal/vec"
)

// cloneSystem deep-copies a system so two integrators can evolve the same
// initial state independently.
func cloneSystem(s *md.System) *md.System {
	return &md.System{
		L:      s.L,
		Pos:    append([]vec.V(nil), s.Pos...),
		Vel:    append([]vec.V(nil), s.Vel...),
		Mass:   append([]float64(nil), s.Mass...),
		Charge: append([]float64(nil), s.Charge...),
		Type:   append([]int(nil), s.Type...),
	}
}

// TestSessionBitIdenticalToSerial is the determinism tentpole gate: with a
// single wavenumber rank the decomposed session must reproduce the serial
// machine's trajectory bit for bit at every rank count — every cell is filled
// by exactly one rank, owned lists stay ascending by global index, and the
// rank-0 assembly preserves the serial real+wave reduction order, so there is
// no summation-order freedom anywhere. Skin 0 pins the every-step-rebuild
// protocol; skin 0.5 Å pins the amortized reuse protocol (ghost position
// streaming + frozen ownership) against the identical serial Verlet-skin
// schedule.
func TestSessionBitIdenticalToSerial(t *testing.T) {
	const steps = 12
	for _, skin := range []float64{0, 0.5} {
		for _, nReal := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("real%d_skin%g", nReal, skin), func(t *testing.T) {
				if testing.Short() && nReal > 2 {
					t.Skip("large rank counts in -short mode")
				}
				s := meltLike(t, 2, 5.64, 600, 31)
				p := smallParams(s.L)
				cfg := CurrentMachineConfig(p)
				cfg.Skin = skin

				serialSys := cloneSystem(s)
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = m.Free() }()
				itS, err := md.NewIntegrator(serialSys, m, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				if err := itS.Run(steps, nil); err != nil {
					t.Fatal(err)
				}

				world, err := mpi.NewWorld(nReal + 1)
				if err != nil {
					t.Fatal(err)
				}
				pr, err := NewParallelRun(world, cfg, nReal, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = pr.Free() }()
				parSys := cloneSystem(s)
				itP, err := md.NewIntegrator(parSys, pr, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				if err := itP.Run(steps, nil); err != nil {
					t.Fatal(err)
				}

				for i := range serialSys.Pos {
					if bitsV(parSys.Pos[i]) != bitsV(serialSys.Pos[i]) {
						t.Fatalf("position %d diverged: parallel %v != serial %v",
							i, parSys.Pos[i], serialSys.Pos[i])
					}
					if bitsV(parSys.Vel[i]) != bitsV(serialSys.Vel[i]) {
						t.Fatalf("velocity %d diverged: parallel %v != serial %v",
							i, parSys.Vel[i], serialSys.Vel[i])
					}
				}
				rebuilds, reuses := pr.JSetStats()
				if rebuilds+reuses != steps+1 { // integrator's initial force call + steps
					t.Errorf("rebuilds %d + reuses %d != %d steps", rebuilds, reuses, steps+1)
				}
				if skin > 0 && reuses == 0 {
					t.Error("skin > 0 but no step reused the decomposition")
				}
				if skin == 0 && reuses != 0 {
					t.Errorf("skin = 0 but %d steps reused the decomposition", reuses)
				}
			})
		}
	}
}

// bitsV renders a vector as its exact float64 bit patterns, so equality is
// bit-identity rather than tolerance.
func bitsV(v vec.V) [3]uint64 {
	return [3]uint64{math.Float64bits(v.X), math.Float64bits(v.Y), math.Float64bits(v.Z)}
}

// TestSessionWaveGroupDriftParity covers the one summation-order freedom the
// layout has: several wavenumber ranks reduce the structure factor with an
// allreduce, which reorders float64 sums, so trajectories are not bit-pinned.
// The parity gate instead: single-step forces at float64 rounding level of
// the serial answer, and NVE drift within the serial machine's own tolerance.
func TestSessionWaveGroupDriftParity(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 32)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Skin = 0.5
	world, err := mpi.NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelRun(world, cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pr.Free() }()

	serial := newTestMachine(t, p)
	want, wantPot, err := serial.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPot, err := pr.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(want)
	for i := range want {
		if d := got[i].Sub(want[i]).Norm() / fscale; d > 1e-9 {
			t.Fatalf("particle %d deviates by %g of RMS", i, d)
		}
	}
	if math.Abs(gotPot-wantPot) > 1e-9*math.Abs(wantPot) {
		t.Errorf("potential %g, serial %g", gotPot, wantPot)
	}

	// Parity gate: the session's NVE drift must match the serial machine's
	// drift under the identical configuration (same skin, same step count) —
	// the allreduce may reorder sums, but it must not change the physics.
	serialSys := cloneSystem(s)
	ms, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ms.Free() }()
	itS, err := md.NewIntegrator(serialSys, ms, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	recS := &md.Recorder{}
	recS.Sample(itS)
	if err := itS.Run(30, func(step int) error { recS.Sample(itS); return nil }); err != nil {
		t.Fatal(err)
	}
	serialDrift := recS.EnergyDrift()

	it, err := md.NewIntegrator(s, pr, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(30, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	drift := rec.EnergyDrift()
	t.Logf("NVE drift: serial %g, 2-rank wavenumber group %g", serialDrift, drift)
	if drift > 2*serialDrift+1e-6 {
		t.Errorf("parallel drift %g exceeds serial parity bound (serial %g)", drift, serialDrift)
	}
}

// TestSessionMigrationOnFaceCrossing pins the persistent-ownership contract:
// ownership only changes on a rebuild step, via migration of the particles
// that crossed a domain face — not by re-deriving the global partition.
func TestSessionMigrationOnFaceCrossing(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 33)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p) // skin 0: any movement rebuilds
	const nReal = 4
	world, err := mpi.NewWorld(nReal + 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelRun(world, cfg, nReal, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pr.Free() }()
	if _, err := pr.Step(s); err != nil {
		t.Fatal(err)
	}

	// Pick a particle and teleport it into a cell owned by another rank.
	g := 0
	oldOwner := pr.blocks.Owner(pr.grid.CellOf(s.Pos[g]))
	newOwner := oldOwner
	for dst := 0; dst < nReal && newOwner == oldOwner; dst++ {
		if dst == oldOwner {
			continue
		}
		cells := pr.blocks.OwnedCells(dst)
		if len(cells) == 0 {
			continue
		}
		xlo, _, ylo, _, zlo, _ := pr.blocks.CellSpan(dst)
		side := s.L / float64(pr.grid.N)
		s.Pos[g] = vec.New((float64(xlo)+0.5)*side, (float64(ylo)+0.5)*side, (float64(zlo)+0.5)*side)
		newOwner = dst
	}
	if newOwner == oldOwner {
		t.Fatal("could not find a second non-empty block")
	}

	before := pr.world.StatsByTag()
	if _, err := pr.Step(s); err != nil {
		t.Fatal(err)
	}
	byTag := subtractByTag(pr.world.StatsByTag(), before)
	if byTag[TagMigrate].Bytes == 0 {
		t.Error("face crossing produced no migration traffic")
	}
	if !containsInt(pr.real[newOwner].owned, g) {
		t.Errorf("particle %d not owned by rank %d after crossing", g, newOwner)
	}
	if containsInt(pr.real[oldOwner].owned, g) {
		t.Errorf("particle %d still owned by rank %d after crossing", g, oldOwner)
	}
	if rebuilds, _ := pr.JSetStats(); rebuilds != 2 {
		t.Errorf("rebuilds = %d, want 2", rebuilds)
	}

	// The post-migration forces must still be the serial machine's, bitwise.
	res, err := pr.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Free() }()
	want, _, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Forces[i] != want[i] {
			t.Fatalf("particle %d: post-migration force %v != serial %v", i, res.Forces[i], want[i])
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestSessionReuseStreamsLessThanRebuild pins the skin amortization on the
// wire: a reuse step moves only ghost position planes (3 floats/ghost, tag
// ghost-pos) and no halo or migration records, so its halo-path byte count
// must be strictly below the rebuild step's stride-5 exchange.
func TestSessionReuseStreamsLessThanRebuild(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 34)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Skin = 0.5
	world, err := mpi.NewWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelRun(world, cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pr.Free() }()

	before := world.StatsByTag()
	if _, err := pr.Step(s); err != nil { // init: scan + full halo exchange
		t.Fatal(err)
	}
	rebuildTag := subtractByTag(world.StatsByTag(), before)

	// Nudge every particle well below the skin/2 rebuild threshold.
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Add(vec.New(1e-3, -1e-3, 1e-3)).Wrap(s.L)
	}
	before = world.StatsByTag()
	res, err := pr.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	reuseTag := subtractByTag(world.StatsByTag(), before)

	if rebuilds, reuses := pr.JSetStats(); rebuilds != 1 || reuses != 1 {
		t.Fatalf("JSetStats = (%d, %d), want (1, 1)", rebuilds, reuses)
	}
	if rebuildTag[TagHalo].Bytes == 0 {
		t.Error("rebuild step sent no halo records")
	}
	if reuseTag[TagHalo].Bytes != 0 || reuseTag[TagMigrate].Bytes != 0 {
		t.Errorf("reuse step sent rebuild traffic: halo %d bytes, migrate %d bytes",
			reuseTag[TagHalo].Bytes, reuseTag[TagMigrate].Bytes)
	}
	if reuseTag[TagGhostPos].Bytes == 0 {
		t.Error("reuse step streamed no ghost positions")
	}
	if reuseTag[TagGhostPos].Bytes >= rebuildTag[TagHalo].Bytes {
		t.Errorf("reuse ghost stream %d bytes not below rebuild halo %d bytes",
			reuseTag[TagGhostPos].Bytes, rebuildTag[TagHalo].Bytes)
	}
	if res.Traffic.Bytes == 0 {
		t.Error("step reported no traffic")
	}
}

// TestSessionSteadyStateAllocs pins the hoisted halo-path scratch: once the
// session is warm, a reuse step's allocation count is a small constant —
// independent of the particle count — because every exchange buffer, index
// list, and force plane is reused and only the md.ForceField output slice
// (plus the run dispatch itself) allocates.
func TestSessionSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short mode")
	}
	measure := func(cells int) float64 {
		s := meltLike(t, cells, 5.64, 300, 35)
		p := smallParams(s.L)
		cfg := CurrentMachineConfig(p)
		cfg.Skin = 0.5
		world, err := mpi.NewWorld(3)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := NewParallelRun(world, cfg, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = pr.Free() }()
		// Warm every buffer: init step plus two steady-state steps.
		for i := 0; i < 3; i++ {
			if _, err := pr.Step(s); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := pr.Step(s); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(2) // 64 ions
	large := measure(3) // 216 ions
	t.Logf("steady-state allocs/step: %.0f at 64 ions, %.0f at 216 ions", small, large)
	// One fresh output slice, the world.Run dispatch (per-rank goroutines),
	// and message envelopes; everything else is hoisted into session scratch.
	// The bound is loose enough for scheduler noise but far below any
	// per-particle regime.
	const budget = 40
	if small > budget || large > budget {
		t.Errorf("steady-state allocs/step = %.0f / %.0f, budget %d", small, large, budget)
	}
	// Independence of N: 3.4× the particles must not grow the step's
	// allocation count beyond noise.
	if large > small+8 {
		t.Errorf("allocs grew with particle count: %.0f at 64 ions vs %.0f at 216", small, large)
	}
}

// TestSessionChaosBoardDropOnDomainRank drives the recovery ladder through a
// board dropout on a *domain* rank mid-run: the re-stripe frees the whole
// rank session, rebuilds it over the surviving boards, and the next step
// re-derives ownership from scratch — the trajectory completes with the
// clean-run NVE tolerance.
func TestSessionChaosBoardDropOnDomainRank(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration in -short mode")
	}
	run := func(scenario string) (float64, RunReport) {
		s := meltLike(t, 2, 5.64, 300, 36)
		p := smallParams(s.L)
		cfg := CurrentMachineConfig(p)
		cfg.Skin = 0.5
		cfg.MDGBoards = 4
		rc := RecoveryConfig{}
		if scenario != "" {
			in, err := fault.ParseInjector(scenario)
			if err != nil {
				t.Fatal(err)
			}
			rc.Injector = in
		}
		world, err := mpi.NewWorld(3)
		if err != nil {
			t.Fatal(err)
		}
		world.SetTimeout(time.Second)
		r, err := NewResilientParallel(cfg, rc, world, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = r.Free() }()
		it, err := md.NewIntegrator(s, r, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		rec := &md.Recorder{}
		rec.Sample(it)
		if err := it.Run(60, func(step int) error { rec.Sample(it); return nil }); err != nil {
			t.Fatal(err)
		}
		if rc.Injector != nil && rc.Injector.Remaining() != 0 {
			t.Errorf("%d scheduled faults never fired", rc.Injector.Remaining())
		}
		return rec.EnergyDrift(), r.Report()
	}
	cleanDrift, cleanRep := run("")
	chaosDrift, chaosRep := run("mdg:board-drop@step=30,board=1")
	t.Logf("drift: clean %g, board drop %g", cleanDrift, chaosDrift)
	if cleanRep.Retries != 0 || cleanRep.Restripes != 0 {
		t.Errorf("fault-free run recovered from something: %+v", cleanRep)
	}
	if chaosRep.Restripes != 1 || chaosRep.MDGBoardsLost != 1 {
		t.Errorf("report = %+v, want one MDG re-stripe", chaosRep)
	}
	if chaosRep.Fallback || chaosRep.FallbackSteps != 0 {
		t.Errorf("board drop degraded to the host path: %+v", chaosRep)
	}
	// Parity gate: the re-striped trajectory is still the decomposed path
	// (striping is pure partitioning), so its drift matches the clean run's.
	if chaosDrift > 2*cleanDrift+1e-6 {
		t.Errorf("drift through the board drop %g exceeds clean parity bound (clean %g)", chaosDrift, cleanDrift)
	}
}
