//go:build !race

package core

const raceDetectorEnabled = false
