package core

import (
	"math"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// smallParams returns an Ewald discretization for a cells×cells×cells NaCl
// crystal box that keeps the reference oracle valid (r_cut <= L/2).
func smallParams(l float64) ewald.Params {
	rcut := 0.45 * l
	alpha := ewald.SReal * l / rcut
	return ewald.Params{L: l, Alpha: alpha, RCut: rcut, LKCut: ewald.SWave * alpha / math.Pi}
}

// meltLike builds a perturbed rock-salt configuration (a poor man's melt
// snapshot) with reproducible displacements.
func meltLike(t *testing.T, cells int, a float64, tK float64, seed int64) *md.System {
	t.Helper()
	s, err := md.NewRockSalt(cells, a)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMaxwellVelocities(tK, seed)
	// Displace positions pseudo-randomly by up to ~0.25 Å so forces are
	// non-trivial but no pair overlaps.
	for i := range s.Pos {
		h := float64((i*2654435761)%1000)/1000.0 - 0.5
		g := float64((i*40503)%1000)/1000.0 - 0.5
		k := float64((i*9973)%1000)/1000.0 - 0.5
		s.Pos[i] = s.Pos[i].Add(vec.New(h, g, k).Scale(0.5)).Wrap(s.L)
	}
	return s
}

func newTestMachine(t *testing.T, p ewald.Params) *Machine {
	t.Helper()
	m, err := NewMachine(CurrentMachineConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineMatchesReference(t *testing.T) {
	s := meltLike(t, 2, 5.64, 1200, 1)
	p := smallParams(s.L)
	machine := newTestMachine(t, p)
	ref, err := NewReference(p)
	if err != nil {
		t.Fatal(err)
	}
	fm, pm, err := machine.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	fr, pr, err := ref.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(fr)
	if fscale == 0 {
		t.Fatal("reference forces vanish; test configuration broken")
	}
	worst := 0.0
	for i := range fm {
		if d := fm[i].Sub(fr[i]).Norm() / fscale; d > worst {
			worst = d
		}
	}
	// The hardware differs from the reference by its own precision (~1e-5)
	// plus the tail pairs beyond r_cut that MDGRAPE-2 does not skip (§2.2).
	// At this small box the r⁻⁶/r⁻⁸ dispersion tails just outside the ~5 Å
	// cutoff are the dominant term, a few 1e-3 eV/Å against a modest force
	// scale — a genuine physical difference between the two summation
	// methods, not a defect.
	if worst > 5e-2 {
		t.Errorf("worst machine-vs-reference force deviation = %g of RMS", worst)
	}
	t.Logf("worst machine-vs-reference force deviation = %.2e of RMS", worst)
	// The machine potential includes the beyond-r_cut tail pairs of the
	// 27-cell walk (consistent with its forces); the reference truncates at
	// r_cut. At this small box the short-range tails shift the total by a
	// fraction of a percent.
	if math.Abs(pm-pr) > 1e-2*math.Abs(pr) {
		t.Errorf("potential: machine %g vs reference %g", pm, pr)
	}
	if err := machine.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceForceIsGradient(t *testing.T) {
	s := meltLike(t, 1, 5.8, 300, 2)
	p := smallParams(s.L)
	ref, err := NewReference(p)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := ref.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for _, comp := range []int{0, 1, 2} {
		shift := [3]vec.V{vec.New(h, 0, 0), vec.New(0, h, 0), vec.New(0, 0, h)}[comp]
		orig := s.Pos[3]
		s.Pos[3] = orig.Add(shift)
		_, ep, err := ref.Forces(s)
		if err != nil {
			t.Fatal(err)
		}
		s.Pos[3] = orig.Sub(shift)
		_, em, err := ref.Forces(s)
		if err != nil {
			t.Fatal(err)
		}
		s.Pos[3] = orig
		want := -(ep - em) / (2 * h)
		got := f[3].Component(comp)
		if math.Abs(got-want) > 2e-3*(1+math.Abs(want)) {
			t.Errorf("component %d: F = %g, -dE/dx = %g", comp, got, want)
		}
	}
}

func TestPerfectCrystalForcesVanish(t *testing.T) {
	s, _ := md.NewRockSalt(2, 5.64)
	p := smallParams(s.L)
	ref, _ := NewReference(p)
	f, _, err := ref.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	// The crystal scale: k_e/d² ≈ 1.8 eV/Å.
	if m := vec.MaxNorm(f); m > 1e-3 {
		t.Errorf("reference max force on perfect crystal = %g", m)
	}
	machine := newTestMachine(t, p)
	fm, _, err := machine.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	if m := vec.MaxNorm(fm); m > 1e-2 {
		t.Errorf("machine max force on perfect crystal = %g", m)
	}
}

func TestMachineNVEEnergyConservation(t *testing.T) {
	// The §5 claim: total energy conserved to ~5e-7 relative (5e-5 percent)
	// over the NVE segment. At our scales (64 ions, 150 steps of 1 fs) the
	// simulated hardware conserves energy to well below 1e-4 relative.
	s := meltLike(t, 2, 5.64, 300, 3)
	p := smallParams(s.L)
	machine := newTestMachine(t, p)
	it, err := md.NewIntegrator(s, machine, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(150, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	drift := rec.EnergyDrift()
	if drift > 2e-4 {
		t.Errorf("machine NVE energy drift = %g", drift)
	}
	t.Logf("machine NVE relative energy drift over 150 fs = %.2e (paper: <5e-7 over 2 ps)", drift)
}

func TestReferenceNVEEnergyConservation(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 4)
	p := smallParams(s.L)
	ref, _ := NewReference(p)
	it, err := md.NewIntegrator(s, ref, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(150, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	// The sharp r_cut truncation of the conventional method injects small
	// energy jumps as pairs cross the cutoff, so its drift is a little worse
	// than the machine's smooth-tail evaluation.
	if drift := rec.EnergyDrift(); drift > 5e-4 {
		t.Errorf("reference NVE energy drift = %g", drift)
	} else {
		t.Logf("reference NVE relative energy drift over 150 fs = %.2e", drift)
	}
}

func TestMachineBoxMismatch(t *testing.T) {
	s, _ := md.NewRockSalt(2, 5.64)
	p := smallParams(20.0) // wrong box
	machine := newTestMachine(t, p)
	if _, _, err := machine.Forces(s); err == nil {
		t.Error("box mismatch accepted")
	}
	ref, _ := NewReference(p)
	if _, _, err := ref.Forces(s); err == nil {
		t.Error("reference box mismatch accepted")
	}
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	p := smallParams(11.28)
	cfg := CurrentMachineConfig(p)
	cfg.MDGBoards = 100000
	if _, err := NewMachine(cfg); err == nil {
		t.Error("absurd board count accepted")
	}
}

func TestPotentialEveryCaching(t *testing.T) {
	s := meltLike(t, 1, 5.8, 300, 5)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.PotentialEvery = 3
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, pot1, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	// Move a particle; cached potential must be returned on calls 2 and 3.
	s.Pos[0] = s.Pos[0].Add(vec.New(0.3, 0, 0)).Wrap(s.L)
	_, pot2, _ := m.Forces(s)
	if pot2 != pot1 {
		t.Errorf("potential recomputed despite PotentialEvery=3")
	}
	_, pot3, _ := m.Forces(s)
	if pot3 != pot1 {
		t.Errorf("potential recomputed on third call")
	}
	_, pot4, _ := m.Forces(s)
	if pot4 == pot1 {
		t.Errorf("potential not refreshed on fourth call")
	}
}

func TestMachineStatsAccumulate(t *testing.T) {
	s := meltLike(t, 1, 5.8, 300, 6)
	p := smallParams(s.L)
	m := newTestMachine(t, p)
	if _, _, err := m.Forces(s); err != nil {
		t.Fatal(err)
	}
	mdg := m.MDGStats()
	wine := m.WineStats()
	if mdg.PairsEvaluated == 0 || mdg.Calls != 4 {
		t.Errorf("MDGRAPE stats = %+v, want 4 passes", mdg)
	}
	wantOps := int64(len(m.Waves()) * s.N())
	if wine.DFTOps != wantOps || wine.IDFTOps != wantOps {
		t.Errorf("WINE stats = %+v, want %d ops each", wine, wantOps)
	}
}

func BenchmarkMachineStep64(b *testing.B) {
	s, _ := md.NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(1200, 1)
	p := smallParams(s.L)
	m, err := NewMachine(CurrentMachineConfig(p))
	if err != nil {
		b.Fatal(err)
	}
	it, err := md.NewIntegrator(s, m, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := it.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceStep64(b *testing.B) {
	s, _ := md.NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(1200, 1)
	p := smallParams(s.L)
	ref, err := NewReference(p)
	if err != nil {
		b.Fatal(err)
	}
	it, err := md.NewIntegrator(s, ref, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := it.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHardwarePotentialMatchesHost(t *testing.T) {
	s := meltLike(t, 2, 5.64, 1200, 19)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.HardwarePotential = true
	hw, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	host := newTestMachine(t, p)
	_, hwPot, err := hw.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	_, hostPot, err := host.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	// Same pair walk, same physics; differences are the float32 pipeline
	// arithmetic and the φ tables (~1e-6 relative).
	if math.Abs(hwPot-hostPot) > 1e-4*math.Abs(hostPot) {
		t.Errorf("hardware potential %g vs host %g", hwPot, hostPot)
	}
	t.Logf("hardware vs host potential: %.10g vs %.10g (Δrel %.1e)",
		hwPot, hostPot, math.Abs(hwPot-hostPot)/math.Abs(hostPot))
}

func TestHardwarePotentialNVEConservation(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 20)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.HardwarePotential = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	it, err := md.NewIntegrator(s, m, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(60, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	if drift := rec.EnergyDrift(); drift > 2e-4 {
		t.Errorf("hardware-potential NVE drift = %g", drift)
	}
}

func TestPressureNearZeroAtEquilibrium(t *testing.T) {
	// The Tosi-Fumi force field should hold the NaCl crystal near zero
	// pressure at the experimental lattice constant (a ≈ 5.64 Å) and show
	// the right sign of response under compression/expansion.
	pressureAt := func(a float64) float64 {
		s, err := md.NewRockSalt(2, a)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewReference(smallParams(s.L))
		if err != nil {
			t.Fatal(err)
		}
		p, err := ref.Pressure(s)
		if err != nil {
			t.Fatal(err)
		}
		return p * units.EVPerA3ToGPa
	}
	p0 := pressureAt(5.64)
	pc := pressureAt(5.30) // compressed
	pe := pressureAt(6.10) // expanded
	t.Logf("P(5.30 Å) = %+.2f GPa, P(5.64 Å) = %+.2f GPa, P(6.10 Å) = %+.2f GPa", pc, p0, pe)
	if math.Abs(p0) > 3 { // GPa; static lattice, small truncation residue
		t.Errorf("equilibrium pressure = %g GPa, want ≈ 0", p0)
	}
	if pc < 5 {
		t.Errorf("compressed crystal pressure = %g GPa, want strongly positive", pc)
	}
	if pe > -0.5 {
		t.Errorf("expanded crystal pressure = %g GPa, want negative (cohesion)", pe)
	}
}

func TestPressureBoxMismatch(t *testing.T) {
	s, _ := md.NewRockSalt(2, 5.64)
	ref, _ := NewReference(smallParams(99))
	if _, err := ref.Pressure(s); err == nil {
		t.Error("box mismatch accepted")
	}
}
