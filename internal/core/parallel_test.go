package core

import (
	"fmt"
	"math"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/mpi"
	"mdm/internal/vec"
)

func TestParallelMatchesSerial(t *testing.T) {
	s := meltLike(t, 2, 5.64, 1200, 11)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)

	serial := newTestMachine(t, p)
	want, wantPot, err := serial.Forces(s)
	if err != nil {
		t.Fatal(err)
	}

	const nReal, nWave = 4, 2
	world, err := mpi.NewWorld(nReal + nWave)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParallelForces(world, cfg, nReal, nWave, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forces) != s.N() {
		t.Fatalf("parallel forces length %d", len(res.Forces))
	}
	// The pair walks are identical up to summation order; agreement should
	// be at float64 rounding level relative to the force scale.
	fscale := vec.RMS(want)
	worst := 0.0
	for i := range want {
		if d := res.Forces[i].Sub(want[i]).Norm() / fscale; d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Errorf("worst parallel-vs-serial force deviation = %g of RMS", worst)
	}
	if math.Abs(res.Potential-wantPot) > 1e-9*math.Abs(wantPot) {
		t.Errorf("potential: parallel %g vs serial %g", res.Potential, wantPot)
	}
	if res.Traffic.Messages == 0 || res.Traffic.Bytes == 0 {
		t.Error("parallel step reported no MPI traffic")
	}
	t.Logf("parallel step traffic: %d messages, %d bytes", res.Traffic.Messages, res.Traffic.Bytes)
}

func TestParallelPaperLayout(t *testing.T) {
	// The paper's 16 real + 8 wavenumber processes, at reduced system size.
	if testing.Short() {
		t.Skip("24-rank layout in -short mode")
	}
	s := meltLike(t, 2, 5.64, 1200, 12)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	world, err := mpi.NewWorld(24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParallelForces(world, cfg, 16, 8, s)
	if err != nil {
		t.Fatal(err)
	}
	serial := newTestMachine(t, p)
	want, _, err := serial.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(want)
	for i := range want {
		if d := res.Forces[i].Sub(want[i]).Norm() / fscale; d > 1e-9 {
			t.Fatalf("particle %d deviates by %g of RMS", i, d)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	s := meltLike(t, 1, 5.64, 300, 13)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	world, _ := mpi.NewWorld(4)
	if _, err := ParallelForces(world, cfg, 3, 2, s); err == nil {
		t.Error("world-size mismatch accepted")
	}
	if _, err := ParallelForces(world, cfg, 0, 4, s); err == nil {
		t.Error("zero real processes accepted")
	}
	if _, err := ParallelForces(world, cfg, 4, 0, s); err == nil {
		t.Error("zero wave processes accepted")
	}
	bad := cfg
	bad.Ewald.L = 2 * p.L
	if _, err := ParallelForces(world, bad, 2, 2, s); err == nil {
		t.Error("box mismatch accepted")
	}
}

func TestParallelSingleRankEachKind(t *testing.T) {
	s := meltLike(t, 1, 5.8, 300, 14)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	world, _ := mpi.NewWorld(2)
	res, err := ParallelForces(world, cfg, 1, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	serial := newTestMachine(t, p)
	want, _, err := serial.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(want)
	for i := range want {
		if d := res.Forces[i].Sub(want[i]).Norm() / fscale; d > 1e-9 {
			t.Fatalf("particle %d deviates by %g", i, d)
		}
	}
}

func TestParallelDrivesIntegrator(t *testing.T) {
	// A parallel force field can drive the integrator through a ForceField
	// adapter; energy behaves like the serial machine. (The box must be
	// large enough that the Tosi-Fumi tails at the cell-crossing distances
	// are negligible — the same resolution requirement the real machine
	// had; see the r_cut = 26.4 Å of §5.)
	s := meltLike(t, 2, 5.64, 300, 15)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	world, _ := mpi.NewWorld(3)
	ff := md.ForceField(parallelFF{world: world, cfg: cfg, nReal: 2, nWave: 1})
	it, err := md.NewIntegrator(s, ff, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(15, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	if drift := rec.EnergyDrift(); drift > 5e-4 {
		t.Errorf("parallel NVE drift = %g", drift)
	}
}

// parallelFF adapts ParallelForces to md.ForceField.
type parallelFF struct {
	world        *mpi.World
	cfg          MachineConfig
	nReal, nWave int
}

func (p parallelFF) Forces(s *md.System) ([]vec.V, float64, error) {
	res, err := ParallelForces(p.world, p.cfg, p.nReal, p.nWave, s)
	if err != nil {
		return nil, 0, err
	}
	return res.Forces, res.Potential, nil
}

func BenchmarkParallelForces(b *testing.B) {
	s, _ := md.NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(1200, 1)
	p := ewald.Params{L: s.L, Alpha: ewald.SReal / 0.45, RCut: 0.45 * s.L,
		LKCut: ewald.SReal / 0.45 * ewald.SWave / math.Pi}
	cfg := CurrentMachineConfig(p)
	for _, layout := range []struct{ nReal, nWave int }{{1, 1}, {4, 2}, {16, 8}} {
		name := fmt.Sprintf("real%d_wave%d", layout.nReal, layout.nWave)
		b.Run(name, func(b *testing.B) {
			world, err := mpi.NewWorld(layout.nReal + layout.nWave)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ParallelForces(world, cfg, layout.nReal, layout.nWave, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParallelForcesRace is a race-detector stress test: several complete
// ParallelForces runs execute concurrently, each on its own mpi.World but all
// reading the same *md.System. The parallel machinery must treat the input
// system as read-only and confine all mutable state (halo buffers, force
// accumulators, traffic counters) to its own world, so `go test -race`
// passing here means the 6-goroutine force step has no hidden shared writes.
func TestParallelForcesRace(t *testing.T) {
	s := meltLike(t, 2, 5.64, 1200, 17)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)

	serial := newTestMachine(t, p)
	want, wantPot, err := serial.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(want)

	const concurrent = 4
	errs := make(chan error, concurrent)
	for run := 0; run < concurrent; run++ {
		go func() {
			world, err := mpi.NewWorld(4 + 2)
			if err != nil {
				errs <- err
				return
			}
			res, err := ParallelForces(world, cfg, 4, 2, s)
			if err != nil {
				errs <- err
				return
			}
			// Cross-check against the serial answer so a racy overlap that
			// corrupts data without tripping the detector still fails.
			for i := range want {
				if d := res.Forces[i].Sub(want[i]).Norm() / fscale; d > 1e-9 {
					errs <- fmt.Errorf("force %d deviates by %g of RMS", i, d)
					return
				}
			}
			if math.Abs(res.Potential-wantPot) > 1e-9*math.Abs(wantPot) {
				errs <- fmt.Errorf("potential %g, want %g", res.Potential, wantPot)
				return
			}
			errs <- nil
		}()
	}
	for run := 0; run < concurrent; run++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
