package core

import (
	"testing"
	"time"

	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mpi"
	"mdm/internal/supervise"
)

// An injected hang on the serial machine must be detected by the watchdog,
// released as a StallError, and absorbed by one retry — well before the
// MaxHang backstop would have let the run limp on without supervision.
func TestResilientWatchdogRecoversHang(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 31)
	p := smallParams(s.L)
	in, err := fault.ParseInjector("mdg:hang@step=2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(CurrentMachineConfig(p), RecoveryConfig{
		Injector: in,
		Watchdog: supervise.NewWatchdog(50 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	start := time.Now()
	var got [][3]float64
	for step := 0; step < 3; step++ {
		f, _, err := r.Forces(s)
		if err != nil {
			t.Fatalf("step %d: %v", step+1, err)
		}
		got = append(got, [3]float64{f[0].X, f[0].Y, f[0].Z})
	}
	if elapsed := time.Since(start); elapsed >= fault.MaxHang {
		t.Errorf("run took %v: the watchdog never fired, the MaxHang backstop did", elapsed)
	}
	rep := r.Report()
	if rep.Stalls != 1 || rep.Retries != 1 {
		t.Errorf("report = %+v, want 1 stall absorbed by 1 retry", rep)
	}
	// The retried step computes the same forces as a clean machine.
	m := newTestMachine(t, p)
	want, _, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range got {
		if g != [3]float64{want[0].X, want[0].Y, want[0].Z} {
			t.Fatalf("recovered forces deviate: %v != %v", g, want[0])
		}
	}
}

// A board failing repeatedly trips its breaker and is quarantined up front —
// re-striped away like a dead board — so later steps stop paying retries.
func TestResilientBreakerQuarantinesFlakyBoard(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 32)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.MDGBoards = 4
	in, err := fault.ParseInjector(
		"mdg:transient@step=2,board=1; mdg:transient@step=3,board=1; mdg:transient@step=4,board=1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(cfg, RecoveryConfig{
		Injector: in,
		Breakers: supervise.NewBreakerSet(supervise.BreakerConfig{Trip: 3, Window: 20}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	m := newTestMachine(t, p)
	want, _, err := m.Forces(s)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 6; step++ {
		f, _, err := r.Forces(s)
		if err != nil {
			t.Fatalf("step %d: %v", step+1, err)
		}
		// Striping is pure partitioning: the quarantined stripe computes the
		// identical forces, and the host path never has to serve a step.
		if f[0] != want[0] {
			t.Fatalf("step %d: forces deviate after quarantine", step+1)
		}
	}
	rep := r.Report()
	if rep.BreakerTrips != 1 || rep.Quarantines != 1 {
		t.Errorf("report = %+v, want 1 trip and 1 quarantine", rep)
	}
	// Failures at steps 2 and 3 are retried; the step-4 failure trips the
	// breaker and is handled by the quarantine re-stripe, not a retry.
	if rep.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (trip replaces the third retry)", rep.Retries)
	}
	if rep.FallbackSteps != 0 || rep.Fallback {
		t.Errorf("quarantine degraded to host: %+v", rep)
	}
	if in.Remaining() != 0 {
		t.Errorf("%d scheduled faults never fired", in.Remaining())
	}
}

// Unattributed failures trip the site-level breaker: while it is open the
// step is served by the host path without dispatching to hardware, and after
// the step-clock cooldown a half-open probe closes it again.
func TestResilientBreakerOpenServesHostThenRecloses(t *testing.T) {
	s := meltLike(t, 2, 5.64, 300, 33)
	p := smallParams(s.L)
	in, err := fault.ParseInjector(
		"mdg:transient@step=2; mdg:transient@step=3; mdg:transient@step=4")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(CurrentMachineConfig(p), RecoveryConfig{
		Injector: in,
		Breakers: supervise.NewBreakerSet(supervise.BreakerConfig{Trip: 3, Window: 20, Cooldown: 4}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	for step := 0; step < 9; step++ {
		if _, _, err := r.Forces(s); err != nil {
			t.Fatalf("step %d: %v", step+1, err)
		}
	}
	rep := r.Report()
	if rep.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", rep.BreakerTrips)
	}
	// Trip at step 4 (served by host), open through steps 5-7, half-open
	// probe at step 8 succeeds and recloses, step 9 is hardware again.
	if rep.FallbackSteps != 4 {
		t.Errorf("FallbackSteps = %d, want 4 (trip step + 3 cooldown steps): %+v", rep.FallbackSteps, rep)
	}
	if rep.Fallback {
		t.Errorf("site breaker caused permanent fallback: %+v", rep)
	}
	if rep.Retries != 2 {
		t.Errorf("Retries = %d, want 2", rep.Retries)
	}
}

// The full supervised chaos run: a parallel NaCl integration survives a hang
// (watchdog) plus a repeatedly flaky board (breaker quarantine) without ever
// degrading to the host path, and still conserves energy.
func TestChaosSupervisedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integrates 120 parallel supervised steps")
	}
	s := meltLike(t, 2, 5.64, 300, 35)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.MDGBoards = 4
	world, err := mpi.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	world.SetTimeout(5 * time.Second)
	in, err := fault.ParseInjector(
		"mdg:hang@step=20; " +
			"mdg:transient@step=40,board=1; mdg:transient@step=55,board=1; mdg:transient@step=70,board=1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilientParallel(cfg, RecoveryConfig{
		Injector: in,
		Watchdog: supervise.NewWatchdog(100 * time.Millisecond),
		Breakers: supervise.NewBreakerSet(supervise.BreakerConfig{Trip: 3, Window: 40}),
	}, world, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	it, err := md.NewIntegrator(s, r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(120, func(int) error {
		rec.Sample(it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if drift := rec.EnergyDrift(); drift > 5e-4 {
		t.Errorf("supervised chaos run drift = %g", drift)
	}
	rep := r.Report()
	if rep.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1: %+v", rep.Stalls, rep)
	}
	if rep.BreakerTrips != 1 || rep.Quarantines != 1 {
		t.Errorf("breaker did not quarantine the flaky board: %+v", rep)
	}
	if rep.Fallback || rep.FallbackSteps != 0 {
		t.Errorf("supervised run degraded to the host path: %+v", rep)
	}
	if in.Remaining() != 0 {
		t.Errorf("%d scheduled faults never fired", in.Remaining())
	}
}

// The parallel path: a hang on one rank's hardware session stalls the whole
// group mid-collective; the watchdog releases the hang and cancels the run
// group, and the step is absorbed by a single retry.
func TestResilientParallelWatchdogRecoversHang(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel hang recovery integrates several parallel steps")
	}
	s := meltLike(t, 2, 5.64, 300, 34)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	world, err := mpi.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	world.SetTimeout(5 * time.Second)
	in, err := fault.ParseInjector("mdg:hang@step=3")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilientParallel(cfg, RecoveryConfig{
		Injector: in,
		Watchdog: supervise.NewWatchdog(100 * time.Millisecond),
	}, world, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	start := time.Now()
	for step := 0; step < 5; step++ {
		if _, _, err := r.Forces(s); err != nil {
			t.Fatalf("step %d: %v", step+1, err)
		}
	}
	if elapsed := time.Since(start); elapsed >= fault.MaxHang {
		t.Errorf("run took %v: the watchdog never fired, the MaxHang backstop did", elapsed)
	}
	rep := r.Report()
	if rep.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1: %+v", rep.Stalls, rep)
	}
	if rep.Retries < 1 {
		t.Errorf("hang not absorbed by a retry: %+v", rep)
	}
	if rep.Fallback || rep.FallbackSteps != 0 {
		t.Errorf("hang degraded the run to the host path: %+v", rep)
	}
	if in.Remaining() != 0 {
		t.Errorf("%d scheduled faults never fired", in.Remaining())
	}
}
