// Package core couples the simulated MDM backends into force fields for the
// MD engine — the paper's primary contribution (§3–§4):
//
//   - Machine evaluates the NaCl force field the way the MDM does: the
//     real-space Coulomb part and the Tosi–Fumi short-range terms on the
//     simulated MDGRAPE-2 (cell-index method, no Newton's third law,
//     single-precision pipelines with table-driven kernels), the
//     wavenumber-space Coulomb part on the simulated WINE-2 (fixed-point
//     DFT/IDFT pipelines), and the bookkeeping (self-energy, potential
//     energy) on the host in float64.
//   - Reference evaluates the identical physics entirely in float64 on the
//     "conventional general-purpose computer" of Table 4: half-sphere pair
//     sums with Newton's third law and a direct wavenumber sum.
//
// Both implement md.ForceField, so the same integrator runs on either — the
// basis of every accuracy experiment in this reproduction.
package core

import (
	"fmt"

	"mdm/internal/cellindex"
	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// Reference is the float64 conventional-computer force field for molten NaCl:
// Ewald Coulomb (real + wavenumber + self) plus Tosi–Fumi short-range terms,
// with an r_cut cutoff and Newton's third law in the real-space sums.
type Reference struct {
	P   ewald.Params
	Pot *tosifumi.Potential

	waves []ewald.Wave
	grid  *cellindex.Grid
}

// NewReference builds the reference force field for the given Ewald
// discretization, using the default Tosi–Fumi NaCl parameters.
func NewReference(p ewald.Params) (*Reference, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	grid, err := cellindex.NewGrid(p.L, p.RCut)
	if err != nil {
		return nil, err
	}
	return &Reference{
		P:     p,
		Pot:   tosifumi.Default(),
		waves: ewald.Waves(p),
		grid:  grid,
	}, nil
}

// Waves returns the wavevector set in use.
func (r *Reference) Waves() []ewald.Wave { return r.waves }

// realPotential returns the real-space Coulomb + short-range potential
// energy (the cutoff half-pair sum) for the configuration, without the
// wavenumber and self terms. The parallel step uses it for host-side
// bookkeeping.
func (r *Reference) realPotential(s *md.System) float64 {
	sorted := cellindex.Sort(r.grid, s.Pos)
	pot := 0.0
	sorted.ForEachHalfPair(r.P.RCut, func(i, j int, rij vec.V) {
		oi, oj := sorted.Order[i], sorted.Order[j]
		pot += r.P.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
		pot += r.Pot.ShortEnergy(tosifumi.Species(s.Type[oi]), tosifumi.Species(s.Type[oj]), rij.Norm())
	})
	return pot
}

// Pressure returns the instantaneous virial pressure in eV/Å³
// (multiply by units.EVPerA3ToGPa for GPa):
//
//	P·V = N k_B T + (W_short + E_coulomb)/3
//
// The Coulomb virial W = Σ f⃗·r⃗ equals +E_coulomb exactly, because the
// electrostatic energy of a neutral periodic system is homogeneous of degree
// −1 under uniform scaling of all lengths (W = −dE(λ)/dλ|₁ = E) — true for
// the full Ewald sum independent of the splitting. The short-range
// Tosi–Fumi virial is accumulated pairwise.
func (r *Reference) Pressure(s *md.System) (float64, error) {
	if s.L != r.P.L {
		return 0, fmt.Errorf("core: system box %g differs from force-field box %g", s.L, r.P.L)
	}
	sorted := cellindex.Sort(r.grid, s.Pos)
	var wShort, eReal float64
	sorted.ForEachHalfPair(r.P.RCut, func(i, j int, rij vec.V) {
		oi, oj := sorted.Order[i], sorted.Order[j]
		si := tosifumi.Species(s.Type[oi])
		sj := tosifumi.Species(s.Type[oj])
		wShort += r.Pot.ShortForce(si, sj, rij).Dot(rij)
		eReal += r.P.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
	})
	sn, cn := ewald.StructureFactors(r.waves, s.Pos, s.Charge)
	eCoul := eReal + ewald.WavenumberEnergy(r.P, r.waves, sn, cn) + ewald.SelfEnergy(r.P, s.Charge)
	v := s.L * s.L * s.L
	nkT := float64(s.N()) * units.Boltzmann * s.Temperature()
	return (nkT + (wShort+eCoul)/3) / v, nil
}

// Forces implements md.ForceField.
func (r *Reference) Forces(s *md.System) ([]vec.V, float64, error) {
	if s.L != r.P.L {
		return nil, 0, fmt.Errorf("core: system box %g differs from force-field box %g", s.L, r.P.L)
	}
	n := s.N()
	forces := make([]vec.V, n)

	// Real-space Coulomb + short range with Newton's third law (eq. 5
	// accounting), via the cell-index grid.
	sorted := cellindex.Sort(r.grid, s.Pos)
	pot := 0.0
	sf := make([]vec.V, n) // forces indexed by sorted order
	sorted.ForEachHalfPair(r.P.RCut, func(i, j int, rij vec.V) {
		oi, oj := sorted.Order[i], sorted.Order[j]
		f := r.P.RealPairForce(s.Charge[oi], s.Charge[oj], rij)
		si := tosifumi.Species(s.Type[oi])
		sj := tosifumi.Species(s.Type[oj])
		f = f.Add(r.Pot.ShortForce(si, sj, rij))
		sf[i] = sf[i].Add(f)
		sf[j] = sf[j].Sub(f)
		rd := rij.Norm()
		pot += r.P.RealPairEnergy(s.Charge[oi], s.Charge[oj], rij)
		pot += r.Pot.ShortEnergy(si, sj, rd)
	})
	sorted.Unsort(forces, sf)

	// Wavenumber-space Coulomb part: direct DFT + IDFT in float64.
	sn, cn := ewald.StructureFactors(r.waves, s.Pos, s.Charge)
	wf := ewald.WavenumberForces(r.P, r.waves, sn, cn, s.Pos, s.Charge)
	for i := range forces {
		forces[i] = forces[i].Add(wf[i])
	}
	pot += ewald.WavenumberEnergy(r.P, r.waves, sn, cn)
	pot += ewald.SelfEnergy(r.P, s.Charge)
	return forces, pot, nil
}
