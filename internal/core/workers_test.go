package core

import (
	"reflect"
	"testing"

	"mdm/internal/fault"
	"mdm/internal/md"
)

// The recovery layer must stay deterministic — bit-identical forces and an
// identical audit trail — when the simulated pipelines are striped across a
// worker pool, including through a retry and a dead-board re-stripe. The
// -race pass over this package exercises the fault hooks under concurrency.

func resilientChaosForces(t *testing.T, workers int) ([]md.Record, RunReport) {
	t.Helper()
	s := meltLike(t, 2, 5.64, 300, 29)
	p := smallParams(s.L)
	cfg := CurrentMachineConfig(p)
	cfg.Workers = workers
	cfg.WineBoards = 4
	in, err := fault.ParseInjector(
		"mdg:transient@call=3; wine2:board-drop@call=2,board=1; mdg:bitflip@call=5,word=9,bit=30")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilient(cfg, RecoveryConfig{Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Free() }()
	it, err := md.NewIntegrator(s, r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &md.Recorder{}
	rec.Sample(it)
	if err := it.Run(8, func(int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	if in.Remaining() != 0 {
		t.Fatalf("%d scheduled faults never fired", in.Remaining())
	}
	return rec.Records, r.Report()
}

func TestResilientBitIdenticalUnderWorkers(t *testing.T) {
	serialRecs, serialRep := resilientChaosForces(t, 1)
	parRecs, parRep := resilientChaosForces(t, 4)
	if !reflect.DeepEqual(serialRep, parRep) {
		t.Errorf("recovery reports diverge under workers=4:\nserial: %+v\nparallel: %+v", serialRep, parRep)
	}
	if len(serialRecs) != len(parRecs) {
		t.Fatalf("%d records vs %d", len(parRecs), len(serialRecs))
	}
	for k := range serialRecs {
		if serialRecs[k] != parRecs[k] {
			t.Fatalf("record %d diverges under workers=4: %+v vs %+v", k, parRecs[k], serialRecs[k])
		}
	}
}
