package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mpi"
	"mdm/internal/supervise"
	"mdm/internal/vec"
)

// Guards are the force-sanity thresholds that classify a completed step as
// suspect. Non-finite forces or potentials are always rejected; the numeric
// thresholds are opt-in (zero disables).
type Guards struct {
	// MaxForce rejects a step whose largest force component magnitude
	// exceeds it — the signature of a bit flip in a high exponent bit.
	MaxForce float64
	// MaxPotJump rejects a step whose potential moved more than this from
	// the last accepted step — the energy-drift watchdog.
	MaxPotJump float64
}

// RecoveryConfig tunes the Resilient recovery policy.
type RecoveryConfig struct {
	// MaxRetries bounds per-step hardware retries. Zero means the default
	// (3); negative disables retries.
	MaxRetries int
	// Backoff is the base delay before a retry; it doubles per attempt and
	// is capped at one second. Zero retries immediately.
	Backoff time.Duration
	Guards  Guards
	// Injector, when set, drives the fault schedule: Resilient advances its
	// step clock and installs it as the hardware hook. It is also how the
	// recovery loop is chaos-tested.
	Injector *fault.Injector

	// Watchdog, when set, is armed around every hardware step: the engine's
	// heartbeats feed it, and a declared stall releases injected hangs (and,
	// on the parallel path, cancels the rank group) so a wedged call fails
	// fast with a retryable StallError instead of blocking the run. Resilient
	// starts the monitor on construction and stops it in Free.
	Watchdog *supervise.Watchdog

	// Breakers, when set, adds per-board and per-link circuit breakers over
	// the retry ladder: a board that trips its breaker is quarantined up
	// front (re-striped away like a dead board), and while a site or link
	// breaker is open the step is served by the host path without paying the
	// hardware round-trip. Cooldowns run on the step clock, so breaker
	// behaviour is deterministic for a scripted fault schedule.
	Breakers *supervise.BreakerSet
}

const defaultMaxRetries = 3

// RunReport is the recovery audit trail of a run. Under a deterministic
// fault schedule the whole report — counts and event log — is reproducible.
type RunReport struct {
	Steps          int      // force evaluations served
	Retries        int      // hardware retries performed
	Restripes      int      // board dropouts survived by re-striping
	SuspectSteps   int      // steps rejected by the sanity guards
	FallbackSteps  int      // steps served by the host reference path
	WineBoardsLost int      // WINE-2 boards marked dead
	MDGBoardsLost  int      // MDGRAPE-2 boards marked dead
	Stalls         int      // stalled calls interrupted by the watchdog
	BreakerTrips   int      // circuit-breaker openings
	Quarantines    int      // boards re-striped away by a tripped breaker
	Fallback       bool     // permanently degraded to the host path
	Events         []string // recovery log, one line per transition
}

// errSuspect marks a guard rejection so the retry logic can classify it.
var errSuspect = errors.New("core: suspect step")

// hwEngine is the hardware path under the recovery policy: the serial
// Machine or the §4 parallel layout.
type hwEngine interface {
	forces(s *md.System) ([]vec.V, float64, error)
	// restripe drops one board at the given site and re-partitions the work
	// across the survivors; it reports false when no capacity remains.
	restripe(site fault.Site) (bool, error)
	// invalidateGeometry drops any cached position-dependent state (the
	// machine's Verlet-skin j-set) after an external position rewrite.
	invalidateGeometry()
	free() error
}

// serialEngine runs the single-process Machine and rebuilds it with one
// fewer board after a dropout (the paper's striping makes the re-partition a
// pure re-initialization).
type serialEngine struct {
	cfg MachineConfig
	m   *Machine
}

func newSerialEngine(cfg MachineConfig) (*serialEngine, error) {
	if cfg.WineBoards == 0 {
		cfg.WineBoards = cfg.Wine.Boards()
	}
	if cfg.MDGBoards == 0 {
		cfg.MDGBoards = cfg.MDG.Boards()
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return &serialEngine{cfg: cfg, m: m}, nil
}

func (e *serialEngine) forces(s *md.System) ([]vec.V, float64, error) { return e.m.Forces(s) }

func (e *serialEngine) restripe(site fault.Site) (bool, error) {
	switch site {
	case fault.WINE2:
		if e.cfg.WineBoards <= 1 {
			return false, nil
		}
		e.cfg.WineBoards--
	case fault.MDG2:
		if e.cfg.MDGBoards <= 1 {
			return false, nil
		}
		e.cfg.MDGBoards--
	default:
		return false, nil
	}
	_ = e.m.Free()
	m, err := NewMachine(e.cfg)
	if err != nil {
		return false, err
	}
	e.m = m
	return true, nil
}

func (e *serialEngine) invalidateGeometry() { e.m.InvalidateGeometry() }

func (e *serialEngine) free() error { return e.m.Free() }

// parallelEngine runs the §4 process layout on a persistent ParallelRun
// session: rank sessions, the decomposition, and all exchange buffers live
// across steps. The world's inboxes are drained before each attempt so an
// aborted step's stragglers cannot pollute the retry; a failed step marks
// the session's geometry invalid (Step does this itself), so the retry
// re-derives ownership from scratch. A re-stripe frees the session and
// rebuilds it with the shrunken board counts.
type parallelEngine struct {
	cfg          MachineConfig
	world        *mpi.World
	nReal, nWave int
	run          *ParallelRun
}

func (e *parallelEngine) forces(s *md.System) ([]vec.V, float64, error) {
	e.world.Reset()
	if e.run == nil {
		run, err := NewParallelRun(e.world, e.cfg, e.nReal, e.nWave)
		if err != nil {
			return nil, 0, err
		}
		e.run = run
	}
	res, err := e.run.Step(s)
	if err != nil {
		return nil, 0, err
	}
	return res.Forces, res.Potential, nil
}

func (e *parallelEngine) restripe(site fault.Site) (bool, error) {
	switch site {
	case fault.WINE2:
		if e.cfg.WineBoards == 0 {
			e.cfg.WineBoards = e.cfg.Wine.Boards()
		}
		if e.cfg.WineBoards-1 < e.nWave {
			return false, nil // fewer boards than wave processes
		}
		e.cfg.WineBoards--
	case fault.MDG2:
		if e.cfg.MDGBoards == 0 {
			e.cfg.MDGBoards = e.cfg.MDG.Boards()
		}
		if e.cfg.MDGBoards-1 < e.nReal {
			return false, nil
		}
		e.cfg.MDGBoards--
	default:
		return false, nil
	}
	// Rank sessions are sized from the board counts at construction, so a
	// re-stripe rebuilds the whole session over the survivors.
	if e.run != nil {
		_ = e.run.Free()
		e.run = nil
	}
	return true, nil
}

// invalidateGeometry drops the session's ownership, ghost lists, and j-set
// layouts; the next step re-derives the decomposition from the rewritten
// positions.
func (e *parallelEngine) invalidateGeometry() {
	if e.run != nil {
		e.run.InvalidateGeometry()
	}
}

func (e *parallelEngine) free() error {
	if e.run == nil {
		return nil
	}
	err := e.run.Free()
	e.run = nil
	return err
}

// Resilient wraps a hardware force path in the recovery policy of the
// ISSUE's degradation ladder: sanity guards classify a completed step as
// suspect; suspect or transiently-failed steps are retried with bounded
// backoff; a board dropout marks the board dead and re-stripes the work
// across the survivors; when no hardware capacity remains (or a step's
// retry budget is spent) the calculation degrades to the host float64
// reference path. Every transition is recorded in the RunReport.
//
// Resilient implements md.ForceField, so it drops into the integrator in
// place of Machine. The host fallback applies the Reference r_cut pair sum,
// so forces differ from the cutoff-free machine path by the (tiny)
// beyond-cutoff tail — acceptable for a degraded mode.
type Resilient struct {
	rc      RecoveryConfig
	eng     hwEngine
	p       ewald.Params
	ref     *Reference
	step    int
	lastPot float64
	havePot bool
	report  RunReport
}

// NewResilient builds the recovery layer over the single-process Machine.
func NewResilient(cfg MachineConfig, rc RecoveryConfig) (*Resilient, error) {
	if rc.Injector != nil {
		cfg.FaultHook = rc.Injector
	}
	superviseWatchdog(&cfg, rc, nil)
	eng, err := newSerialEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Resilient{rc: rc, eng: eng, p: cfg.Ewald}, nil
}

// superviseWatchdog wires a configured watchdog into the machine config:
// hardware heartbeats feed it, and a declared stall releases injected hangs
// and (parallel path) cancels the rank group so every peer unwinds with a
// retryable error.
func superviseWatchdog(cfg *MachineConfig, rc RecoveryConfig, world *mpi.World) {
	wd := rc.Watchdog
	if wd == nil {
		return
	}
	cfg.Heartbeat = wd.Beat
	if in := rc.Injector; in != nil {
		wd.OnStall(func(string) { in.ReleaseHangs() })
	}
	if world != nil {
		wd.OnStall(func(string) { world.CancelRun() })
	}
	wd.Start()
}

// NewResilientParallel builds the recovery layer over the §4 parallel
// layout (nReal real-space + nWave wavenumber processes on world). The
// injector, when present, is installed as both the hardware hook of every
// rank session and the world's message-layer fault hook.
func NewResilientParallel(cfg MachineConfig, rc RecoveryConfig, world *mpi.World, nReal, nWave int) (*Resilient, error) {
	if world.Size() != nReal+nWave {
		return nil, fmt.Errorf("core: world size %d != %d real + %d wave", world.Size(), nReal, nWave)
	}
	if rc.Injector != nil {
		cfg.FaultHook = rc.Injector
		world.SetFaultHook(rc.Injector)
	}
	superviseWatchdog(&cfg, rc, world)
	eng := &parallelEngine{cfg: cfg, world: world, nReal: nReal, nWave: nWave}
	return &Resilient{rc: rc, eng: eng, p: cfg.Ewald}, nil
}

// SetStep positions the step clock (e.g. when resuming from a checkpoint),
// so step-keyed fault events line up with the simulation step.
func (r *Resilient) SetStep(n int) { r.step = n }

// InvalidateGeometry implements md.GeometryInvalidator: an external position
// rewrite (checkpoint restore) drops the cached Verlet-skin j-set.
func (r *Resilient) InvalidateGeometry() { r.eng.invalidateGeometry() }

// Step returns the current force-evaluation index (1-based).
func (r *Resilient) Step() int { return r.step }

// Report returns a copy of the recovery audit trail.
func (r *Resilient) Report() RunReport {
	rep := r.report
	rep.Events = append([]string(nil), r.report.Events...)
	return rep
}

// AdoptReport seeds the audit trail from a previous incarnation — the
// checkpoint-restart path — so recovery history survives a restart. Steps
// keeps counting force evaluations actually served, including any replayed
// between the checkpoint and the fatal fault.
func (r *Resilient) AdoptReport(rep RunReport) {
	rep.Events = append([]string(nil), rep.Events...)
	r.report = rep
}

// Free releases the underlying hardware sessions and stops the watchdog
// monitor.
func (r *Resilient) Free() error {
	if r.rc.Watchdog != nil {
		r.rc.Watchdog.Stop()
	}
	return r.eng.free()
}

func (r *Resilient) maxRetries() int {
	if r.rc.MaxRetries == 0 {
		return defaultMaxRetries
	}
	if r.rc.MaxRetries < 0 {
		return 0
	}
	return r.rc.MaxRetries
}

// logf appends a formatted line to the recovery event log.
//
//mdm:hotallocok -- recovery event log: reached only when a step failed or was rejected, never on the clean per-step path
func (r *Resilient) logf(format string, args ...any) {
	r.report.Events = append(r.report.Events, fmt.Sprintf(format, args...))
}

// backoff sleeps before the n-th retry (n ≥ 1): Backoff·2^(n-1), capped at
// one second.
//
//mdm:wallclockok -- retry backoff on the failure path only; the sleep paces recovery and never feeds simulation state
func (r *Resilient) backoff(n int) {
	if r.rc.Backoff <= 0 {
		return
	}
	d := r.rc.Backoff << (n - 1)
	if d > time.Second {
		d = time.Second
	}
	time.Sleep(d)
}

// retryable reports whether an error is worth retrying on the same
// hardware: transient chip errors, link errors, message-layer timeouts,
// desyncs and cancellation echoes, and guard rejections (the flipped bit is
// gone on the next pass).
func retryable(err error) bool {
	var te *fault.TransientError
	var le *fault.LinkError
	var se *fault.StallError
	return errors.As(err, &te) || errors.As(err, &le) || errors.As(err, &se) ||
		errors.Is(err, mpi.ErrTimeout) || errors.Is(err, mpi.ErrCanceled) ||
		errors.Is(err, mpi.ErrTagMismatch) || errors.Is(err, errSuspect)
}

// classify renders an error for the event log in a form that is stable
// across goroutine interleavings: a dropped message surfaces on the parallel
// path as a timeout, a cancellation echo, or a tag desync depending on
// timing, so those collapse to one label.
//
//mdm:hotallocok -- error-classification labels are built only after a step failed; the clean step path never reaches this
func classify(err error) string {
	var te *fault.TransientError
	if errors.As(err, &te) {
		return fmt.Sprintf("%s transient error", te.Site)
	}
	var le *fault.LinkError
	if errors.As(err, &le) {
		return fmt.Sprintf("link error %d→%d", le.Src, le.Dst)
	}
	var se *fault.StallError
	if errors.As(err, &se) {
		return fmt.Sprintf("%s stall (watchdog)", se.Site)
	}
	if errors.Is(err, errSuspect) {
		return err.Error()
	}
	if errors.Is(err, mpi.ErrTimeout) || errors.Is(err, mpi.ErrCanceled) || errors.Is(err, mpi.ErrTagMismatch) {
		return "message-layer fault"
	}
	return "hardware fault"
}

// breakerScope derives the circuit-breaker scope of a retryable failure: a
// board-attributed hardware fault keys "site/boardN" (quarantinable), an
// unattributed one keys the site, a link error keys its (src, dst) pair.
//
//mdm:hotallocok -- breaker scope keys are derived only from a retryable failure, off the clean per-step path
func breakerScope(err error) (scope string, site fault.Site, board int, ok bool) {
	var te *fault.TransientError
	if errors.As(err, &te) {
		return hwScope(te.Site, te.Board), te.Site, te.Board, true
	}
	var se *fault.StallError
	if errors.As(err, &se) {
		return hwScope(se.Site, se.Board), se.Site, se.Board, true
	}
	var le *fault.LinkError
	if errors.As(err, &le) {
		return fmt.Sprintf("link %d-%d", le.Src, le.Dst), "", -1, true
	}
	return "", "", -1, false
}

// hwScope renders the breaker-scope key of a board-attributed fault.
//
//mdm:hotallocok -- called only while classifying a failed step (see breakerScope), never on the clean path
func hwScope(site fault.Site, board int) string {
	if board >= 0 {
		return fmt.Sprintf("%s/board%d", site, board)
	}
	return string(site)
}

// suspectReason applies the sanity guards to a completed step; it returns a
// non-empty reason when the step must be rejected.
//
//mdm:hotallocok -- the Sprintf branches run only when a guard trips and the step is about to be rejected; the accept path is scan-only
func (r *Resilient) suspectReason(f []vec.V, pot float64) string {
	maxAbs := 0.0
	for i := range f {
		for _, v := range [3]float64{f[i].X, f[i].Y, f[i].Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return "non-finite force"
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if math.IsNaN(pot) || math.IsInf(pot, 0) {
		return "non-finite potential"
	}
	if g := r.rc.Guards.MaxForce; g > 0 && maxAbs > g {
		return fmt.Sprintf("force spike %.3g > %.3g", maxAbs, g)
	}
	if g := r.rc.Guards.MaxPotJump; g > 0 && r.havePot && math.Abs(pot-r.lastPot) > g {
		return fmt.Sprintf("potential jump %.3g > %.3g", math.Abs(pot-r.lastPot), g)
	}
	return ""
}

// hostForces serves a step from the float64 reference path.
func (r *Resilient) hostForces(s *md.System) ([]vec.V, float64, error) {
	if r.ref == nil {
		ref, err := NewReference(r.p)
		if err != nil {
			return nil, 0, err
		}
		r.ref = ref
	}
	f, pot, err := r.ref.Forces(s)
	if err == nil {
		r.havePot = true
		r.lastPot = pot
	}
	return f, pot, err
}

// Forces implements md.ForceField with the full recovery ladder.
func (r *Resilient) Forces(s *md.System) ([]vec.V, float64, error) {
	r.step++
	r.report.Steps++
	if in := r.rc.Injector; in != nil {
		in.BeginStep(r.step)
		if err := in.StepFault(); err != nil {
			r.logf("step %d: fatal host fault: %v", r.step, err)
			return nil, 0, err
		}
	}
	if r.report.Fallback {
		r.report.FallbackSteps++
		return r.hostForces(s)
	}
	// A breaker left open by earlier steps quarantines hardware dispatch up
	// front: the step is served by the host path without paying the retry
	// round-trip, until the step-clock cooldown half-opens the breaker.
	if br := r.rc.Breakers; br != nil {
		if scope, open := br.FirstOpen(r.step); open {
			r.report.FallbackSteps++
			r.logf("step %d: breaker %s open, host fallback", r.step, scope)
			return r.hostForces(s)
		}
	}
	retries := 0
	for {
		if wd := r.rc.Watchdog; wd != nil {
			wd.Arm()
		}
		f, pot, err := r.eng.forces(s)
		if wd := r.rc.Watchdog; wd != nil {
			wd.Disarm()
		}
		if err == nil {
			if reason := r.suspectReason(f, pot); reason != "" {
				r.report.SuspectSteps++
				err = fmt.Errorf("%w: %s", errSuspect, reason)
			} else {
				if br := r.rc.Breakers; br != nil {
					br.OK(r.step)
				}
				r.havePot = true
				r.lastPot = pot
				return f, pot, nil
			}
		}
		var be *fault.BoardError
		if errors.As(err, &be) {
			switch be.Site {
			case fault.WINE2:
				r.report.WineBoardsLost++
			case fault.MDG2:
				r.report.MDGBoardsLost++
			}
			ok, rerr := r.eng.restripe(be.Site)
			if rerr != nil {
				return nil, 0, rerr
			}
			if ok {
				r.report.Restripes++
				r.logf("step %d: %s board %d dead, re-striped across survivors", r.step, be.Site, be.Board)
				continue
			}
			r.report.Fallback = true
			r.report.FallbackSteps++
			r.logf("step %d: %s capacity exhausted, degrading to host reference path", r.step, be.Site)
			return r.hostForces(s)
		}
		if !retryable(err) {
			return nil, 0, err // config/validation error: not the hardware's fault
		}
		var se *fault.StallError
		if errors.As(err, &se) {
			r.report.Stalls++
		}
		if br := r.rc.Breakers; br != nil {
			if scope, site, board, ok := breakerScope(err); ok && br.Fail(scope, r.step) {
				r.report.BreakerTrips++
				if board >= 0 && (site == fault.WINE2 || site == fault.MDG2) {
					// The breaker's verdict: this board is chronically bad.
					// Quarantine it up front — drop it from the stripe like a
					// dead board — instead of paying a retry every step.
					br.Drop(scope)
					ok, rerr := r.eng.restripe(site)
					if rerr != nil {
						return nil, 0, rerr
					}
					if ok {
						r.report.Quarantines++
						r.logf("step %d: breaker %s tripped, board quarantined (re-striped)", r.step, scope)
						continue
					}
					r.report.Fallback = true
					r.report.FallbackSteps++
					r.logf("step %d: breaker %s tripped with no capacity left, degrading to host reference path", r.step, scope)
					return r.hostForces(s)
				}
				r.report.FallbackSteps++
				r.logf("step %d: breaker %s open, host fallback for this step", r.step, scope)
				return r.hostForces(s)
			}
		}
		if retries < r.maxRetries() {
			retries++
			r.report.Retries++
			r.logf("step %d: retry %d after %s", r.step, retries, classify(err))
			r.backoff(retries)
			continue
		}
		r.report.FallbackSteps++
		r.logf("step %d: retry budget spent (%s), host fallback for this step", r.step, classify(err))
		return r.hostForces(s)
	}
}
