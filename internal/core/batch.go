package core

import (
	"fmt"

	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/vec"
)

// BatchMachine steps K independent small-N systems through ONE simulated MDM.
//
// The paper's machine amortized its fixed costs — table RAM loads, coefficient
// RAMs, the wavevector enumeration, the cell-grid geometry — over a long run
// of one large system. For parameter sweeps over many small systems the same
// amortization applies across systems instead of across steps: every slot of a
// batch shares the Machine's function-evaluator tables, coefficient RAMs,
// wavevector set, cell grid, worker pool, and every per-call scratch buffer
// (force planes, quantized particle image, structure factors, sort buckets).
// Only the trajectory-dependent state — the sorted j-set, the Verlet-skin
// reference positions, the potential-energy schedule — is per-slot.
//
// Slots step serially in slot order within each round, so results are
// throughput-amortized, not parallelized: slot i's trajectory is bit-identical
// to running it alone on a fresh Machine with the same MachineConfig,
// independent of K and of the other slots' contents. That holds because every
// shared buffer is value-independent between calls (fully overwritten before
// it is read), while all value-carrying state is swapped in and out around
// each slot's force call.
type BatchMachine struct {
	m     *Machine
	slots []batchSlot
}

// batchSlot is the trajectory-dependent Machine state of one batched system,
// swapped into the shared Machine around each force call.
type batchSlot struct {
	it *md.Integrator

	jsb      *mdgrape2.JSetBuilder // clone: own j-set, shared neighbor table + sorter
	js       *mdgrape2.JSet
	refPos   []vec.V
	haveJSet bool
	rebuilds int
	reuses   int

	potCalls int
	lastPot  float64
}

// slotField adapts one batch slot to md.ForceField: it swaps the slot's
// trajectory state into the shared Machine, delegates to Machine.Forces, and
// swaps the (possibly updated) state back out.
type slotField struct {
	b *BatchMachine
	i int
}

// Forces implements md.ForceField for one slot of the batch.
func (f slotField) Forces(s *md.System) ([]vec.V, float64, error) {
	b, m := f.b, f.b.m
	sl := &b.slots[f.i]

	// Adopt the slot's trajectory state.
	m.jsb, m.js = sl.jsb, sl.js
	m.refPos, m.haveJSet = sl.refPos, sl.haveJSet
	m.jsetRebuilds, m.jsetReuses = sl.rebuilds, sl.reuses
	m.potCalls, m.lastPot = sl.potCalls, sl.lastPot

	forces, pot, err := m.Forces(s)

	// Stash it back (the j-set or reference positions may have been rebuilt,
	// and the potential schedule advanced) — unconditionally, so a failed call
	// leaves the slot observing exactly what the Machine observed.
	sl.jsb, sl.js = m.jsb, m.js
	sl.refPos, sl.haveJSet = m.refPos, m.haveJSet
	sl.rebuilds, sl.reuses = m.jsetRebuilds, m.jsetReuses
	sl.potCalls, sl.lastPot = m.potCalls, m.lastPot

	return forces, pot, err
}

// InvalidateGeometry implements core recovery/restore hooks per slot: the next
// force call on this slot rebuilds its j-set.
func (f slotField) InvalidateGeometry() { f.b.slots[f.i].haveJSet = false }

// NewBatchMachine builds one Machine from cfg and wires every system in the
// batch to it through its own integrator (timestep dt, femtoseconds). All
// systems must share the machine's box edge cfg.Ewald.L; they may differ in
// everything else a System carries (positions, velocities, even N, since the
// per-call buffers resize by length).
func NewBatchMachine(cfg MachineConfig, systems []*md.System, dt float64) (*BatchMachine, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("core: batch of zero systems")
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	// Throughput mode amortizes the pair enumeration across the four tables
	// even on one core: the fused sweep, without the pipeline's overlap.
	m.fuse = true
	b := &BatchMachine{m: m, slots: make([]batchSlot, len(systems))}
	for i, s := range systems {
		if s.L != cfg.Ewald.L {
			m.Free()
			return nil, fmt.Errorf("core: batch slot %d box %g differs from machine box %g", i, s.L, cfg.Ewald.L)
		}
		// Each slot owns a j-set builder clone: private sorted layout, shared
		// (value-independent) neighbor table and sort scratch.
		b.slots[i].jsb = m.jsb.Clone()
		// NewIntegrator performs the initial force call, which runs through
		// the slot swap — it seeds the slot's j-set and potential.
		it, err := md.NewIntegrator(s, slotField{b: b, i: i}, dt)
		if err != nil {
			m.Free()
			return nil, fmt.Errorf("core: batch slot %d: %w", i, err)
		}
		b.slots[i].it = it
	}
	return b, nil
}

// K returns the number of batched systems.
func (b *BatchMachine) K() int { return len(b.slots) }

// Integrator returns slot i's integrator, for setting the thermostat mode or
// reading per-slot energies.
func (b *BatchMachine) Integrator(i int) *md.Integrator { return b.slots[i].it }

// Machine exposes the shared underlying machine (work counters, wave set).
func (b *BatchMachine) Machine() *Machine { return b.m }

// JSetStats returns slot i's j-set rebuild/reuse counters.
func (b *BatchMachine) JSetStats(i int) (rebuilds, reuses int) {
	return b.slots[i].rebuilds, b.slots[i].reuses
}

// Step advances every slot by one velocity-Verlet step, serially in slot
// order. The first error aborts the round (later slots keep their pre-round
// state for that round).
//
//mdm:stepflow -- hot-path root: the batched per-step flow — K swapped trajectories through one machine's step path
func (b *BatchMachine) Step() error {
	for i := range b.slots {
		if err := b.slots[i].it.Step(); err != nil {
			return fmt.Errorf("core: batch slot %d: %w", i, err)
		}
	}
	return nil
}

// Run advances the whole batch n rounds, invoking observe (if non-nil) after
// each round with the 1-based round number.
func (b *BatchMachine) Run(n int, observe func(round int) error) error {
	for r := 1; r <= n; r++ {
		if err := b.Step(); err != nil {
			return err
		}
		if observe != nil {
			if err := observe(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Free releases the shared machine's backend sessions.
func (b *BatchMachine) Free() error { return b.m.Free() }
