//go:build race

package core

// raceDetectorEnabled reports whether this test binary was built with the
// race detector. Alloc-count pinning tests skip under race: the detector's
// instrumentation allocates per goroutine handoff in the dispatch path, so
// the counts those tests pin are only meaningful in an uninstrumented build.
const raceDetectorEnabled = true
