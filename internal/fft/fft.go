// Package fft implements the radix-2 complex fast Fourier transform used by
// the smooth particle-mesh Ewald method (package pme) — the O(N log N)
// alternative to the direct wavenumber summation that the paper cites as
// ref. [4] (Essmann et al.) and positions WINE-2 against.
//
// Only power-of-two lengths are supported; 3-D transforms operate on a flat
// cube with x fastest (index = (z·n + y)·n + x). The forward transform uses
// the e^{-2πi nk/N} kernel; Inverse applies the conjugate kernel and the 1/N
// normalization, so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of data. len(data) must be a
// power of two.
func Forward(data []complex128) error {
	return transform(data, false)
}

// Inverse computes the in-place inverse DFT (with 1/N normalization).
func Inverse(data []complex128) error {
	if err := transform(data, true); err != nil {
		return err
	}
	n := complex(float64(len(data)), 0)
	for i := range data {
		data[i] /= n
	}
	return nil
}

// transform is the iterative radix-2 Cooley–Tukey kernel.
func transform(data []complex128, inverse bool) error {
	n := len(data)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := data[start+k]
				b := data[start+k+half] * w
				data[start+k] = a + b
				data[start+k+half] = a - b
				w *= step
			}
		}
	}
	return nil
}

// Cube is a flat n×n×n complex mesh (x fastest).
type Cube struct {
	N    int
	Data []complex128
}

// NewCube allocates a zeroed n³ mesh; n must be a power of two.
func NewCube(n int) (*Cube, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: cube size %d is not a power of two", n)
	}
	return &Cube{N: n, Data: make([]complex128, n*n*n)}, nil
}

// Index flattens (x, y, z) mesh coordinates.
func (c *Cube) Index(x, y, z int) int { return (z*c.N+y)*c.N + x }

// At returns the value at (x, y, z).
func (c *Cube) At(x, y, z int) complex128 { return c.Data[c.Index(x, y, z)] }

// Set stores v at (x, y, z).
func (c *Cube) Set(x, y, z int, v complex128) { c.Data[c.Index(x, y, z)] = v }

// Forward3 computes the in-place 3-D forward DFT.
func (c *Cube) Forward3() error { return c.transform3(false) }

// Inverse3 computes the in-place 3-D inverse DFT (normalized by 1/n³).
func (c *Cube) Inverse3() error { return c.transform3(true) }

func (c *Cube) transform3(inverse bool) error {
	n := c.N
	buf := make([]complex128, n)
	apply := func(get func(k int) int) error {
		for k := 0; k < n; k++ {
			buf[k] = c.Data[get(k)]
		}
		var err error
		if inverse {
			err = Inverse(buf)
		} else {
			err = Forward(buf)
		}
		if err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			c.Data[get(k)] = buf[k]
		}
		return nil
	}
	// X lines.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			base := (z*n + y) * n
			if err := apply(func(k int) int { return base + k }); err != nil {
				return err
			}
		}
	}
	// Y lines.
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			base := z * n * n
			if err := apply(func(k int) int { return base + k*n + x }); err != nil {
				return err
			}
		}
	}
	// Z lines.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			base := y*n + x
			if err := apply(func(k int) int { return base + k*n*n }); err != nil {
				return err
			}
		}
	}
	return nil
}
