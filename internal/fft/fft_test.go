package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(N²) oracle.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = s
	}
	return out
}

func randomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64} {
		x := randomComplex(n, int64(n))
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d: X[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	if err := Forward(make([]complex128, 6)); err == nil {
		t.Error("length 6 accepted")
	}
	if err := Inverse(make([]complex128, 0)); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := NewCube(10); err == nil {
		t.Error("cube 10 accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randomComplex(32, seed)
		y := append([]complex128(nil), x...)
		if err := Forward(y); err != nil {
			return false
		}
		if err := Inverse(y); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-10*(1+cmplx.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	x := randomComplex(128, 3)
	var timeE float64
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(len(x))-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: %g vs %g", freqE/float64(len(x)), timeE)
	}
}

func TestCubeRoundTrip(t *testing.T) {
	c, err := NewCube(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	orig := make([]complex128, len(c.Data))
	for i := range c.Data {
		c.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = c.Data[i]
	}
	if err := c.Forward3(); err != nil {
		t.Fatal(err)
	}
	if err := c.Inverse3(); err != nil {
		t.Fatal(err)
	}
	for i := range c.Data {
		if cmplx.Abs(c.Data[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestCubeSingleMode(t *testing.T) {
	// A pure plane wave e^{2πi (x·1)/n} transforms to a single spike at
	// mode (n-1 for forward e^{-} convention... verify against direct sum).
	const n = 8
	c, _ := NewCube(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				c.Set(x, y, z, cmplx.Exp(complex(0, 2*math.Pi*float64(x)/n)))
			}
		}
	}
	if err := c.Forward3(); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := complex(0, 0)
				if x == 1 && y == 0 && z == 0 {
					want = complex(n*n*n, 0)
				}
				if cmplx.Abs(c.At(x, y, z)-want) > 1e-9*float64(n*n*n) {
					t.Fatalf("mode (%d,%d,%d) = %v, want %v", x, y, z, c.At(x, y, z), want)
				}
			}
		}
	}
}

func TestCubeIndex(t *testing.T) {
	c, _ := NewCube(4)
	seen := map[int]bool{}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				i := c.Index(x, y, z)
				if i < 0 || i >= 64 || seen[i] {
					t.Fatalf("bad index %d for (%d,%d,%d)", i, x, y, z)
				}
				seen[i] = true
			}
		}
	}
}

func BenchmarkForward1024(b *testing.B) {
	x := randomComplex(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCube32(b *testing.B) {
	c, _ := NewCube(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Forward3(); err != nil {
			b.Fatal(err)
		}
	}
}
