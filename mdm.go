// Package mdm is a software reproduction of the Molecular Dynamics Machine
// (MDM) of Narumi et al., "1.34 Tflops Molecular Dynamics Simulation for
// NaCl with a Special-Purpose Computer: MDM" (SC 2000).
//
// The MDM couples two special-purpose processors to a general-purpose host:
// WINE-2 evaluates the wavenumber-space part of the Ewald Coulomb sum on
// fixed-point DFT/IDFT pipelines, and MDGRAPE-2 evaluates the real-space
// Coulomb and van der Waals forces on single-precision pipelines with a
// table-driven arbitrary central-force unit. This package provides:
//
//   - bit-level simulators of both processors and their host libraries
//     (internal/wine2, internal/mdgrape2), coupled into an md.ForceField by
//     internal/core;
//   - a float64 "conventional computer" reference implementing the identical
//     physics (Ewald + Tosi–Fumi molten NaCl);
//   - the performance-accounting model that reproduces the paper's Table 4
//     and Table 5, including the 1.34 Tflops effective-speed headline;
//   - the Figure 2 temperature-fluctuation experiment and the comparison
//     methods of §6.3 (Barnes–Hut tree code, smooth particle-mesh Ewald).
//
// The exported surface wraps those pieces into a small simulation API: build
// a NaCl system with Config, run NVT/NVE segments, and read observables.
package mdm

import (
	"fmt"
	"math"

	"mdm/internal/core"
	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/perf"
	"mdm/internal/units"
)

// Backend selects which engine evaluates forces.
type Backend int

// The two engines of the reproduction.
const (
	// BackendMDM runs the simulated special-purpose machine: WINE-2
	// fixed-point pipelines + MDGRAPE-2 single-precision pipelines.
	BackendMDM Backend = iota
	// BackendReference runs the float64 conventional-computer path.
	BackendReference
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendMDM:
		return "MDM"
	case BackendReference:
		return "Reference"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Config describes one NaCl simulation. Zero values select the defaults
// noted on each field.
type Config struct {
	Cells       int     // rock-salt unit cells per side (default 2 → 64 ions)
	Lattice     float64 // lattice constant in Å (default 5.64, NaCl)
	Temperature float64 // initial/target temperature in K (default 1200, the paper's melt)
	Dt          float64 // time step in fs (default 2, as in §5)
	Alpha       float64 // Ewald splitting parameter (default: balanced for the box)
	Seed        int64   // velocity RNG seed (default 1)
	Backend     Backend // force engine (default BackendMDM)

	// PotentialEvery sets how often the host evaluates the potential
	// energy on the MDM backend (default 1; the paper used 100).
	PotentialEvery int

	// Faults is a fault-injection scenario in the internal/fault DSL, e.g.
	// "wine2:board-drop@step=100,board=2; mpi:drop@src=1,dst=0,n=3". When
	// non-empty (MDM backend only) the force path runs under the recovery
	// policy: transient faults are retried, dead boards re-striped, and the
	// run degrades to the reference path when hardware capacity is gone.
	// The schedule is deterministic: the same scenario yields the same
	// faults and the same FaultReport.
	Faults string

	// MaxRetries bounds per-step hardware retries under a fault scenario
	// (default 3; negative disables retries).
	MaxRetries int

	// Workers is the host worker-pool width the MDM backend uses to stripe
	// the simulated WINE-2/MDGRAPE-2 pipelines across OS threads (0 =
	// runtime.GOMAXPROCS(0), 1 = serial). Any width produces bit-identical
	// trajectories; the reference backend ignores it.
	Workers int
}

func (c *Config) fillDefaults() {
	if c.Cells == 0 {
		c.Cells = 2
	}
	if c.Lattice == 0 {
		c.Lattice = 5.64
	}
	if c.Temperature == 0 {
		c.Temperature = 1200
	}
	if c.Dt == 0 {
		c.Dt = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PotentialEvery == 0 {
		c.PotentialEvery = 1
	}
}

// EwaldParams returns the discretization a Config resolves to.
func (c Config) EwaldParams() (ewald.Params, error) {
	c.fillDefaults()
	l := float64(c.Cells) * c.Lattice
	alpha := c.Alpha
	if alpha == 0 {
		// Balanced discretization bounded by the minimum-image constraint
		// of the reference oracle: r_cut <= 0.45 L.
		alpha = math.Max(ewald.SReal/0.45, ewald.ConventionalCost().OptimalAlpha(l, density(c)))
	}
	p := ewald.ParamsForAlpha(l, alpha)
	if p.RCut > l/2 {
		p.RCut = 0.45 * l
	}
	return p, p.Validate()
}

func density(c Config) float64 {
	l := float64(c.Cells) * c.Lattice
	n := float64(8 * c.Cells * c.Cells * c.Cells)
	return n / (l * l * l)
}

// Record is one observable sample (step, time in ps, temperature, energies).
type Record = md.Record

// FaultReport is the recovery audit trail of a run under fault injection:
// retry, re-stripe and fallback counts plus the event log. Deterministic for
// a given Config.Faults scenario.
type FaultReport = core.RunReport

// Simulation is a configured NaCl run.
type Simulation struct {
	cfg Config
	p   ewald.Params

	System     *md.System
	Integrator *md.Integrator
	Recorder   *md.Recorder

	machine   *core.Machine   // nil for the reference backend
	resilient *core.Resilient // non-nil when running under a fault scenario
	injector  *fault.Injector // the scenario's schedule; survives restarts
	obs       *core.Reference // host-side observable evaluation (pressure)
	nveStart  int             // record index where the latest NVE segment began
}

// newForceField builds the configured engine. A non-nil injector (the
// restart path) takes precedence over parsing cfg.Faults again, so events
// that already fired before a restart stay consumed.
func newForceField(cfg Config, p ewald.Params, in *fault.Injector) (md.ForceField, *core.Machine, *core.Resilient, *fault.Injector, error) {
	switch cfg.Backend {
	case BackendMDM:
		mcfg := core.CurrentMachineConfig(p)
		mcfg.PotentialEvery = cfg.PotentialEvery
		mcfg.Workers = cfg.Workers
		if in == nil && cfg.Faults != "" {
			var err error
			in, err = fault.ParseInjector(cfg.Faults)
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("mdm: fault scenario: %w", err)
			}
		}
		if in != nil {
			res, err := core.NewResilient(mcfg, core.RecoveryConfig{
				MaxRetries: cfg.MaxRetries,
				Injector:   in,
			})
			if err != nil {
				return nil, nil, nil, nil, err
			}
			return res, nil, res, in, nil
		}
		machine, err := core.NewMachine(mcfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return machine, machine, nil, nil, nil
	case BackendReference:
		ff, err := core.NewReference(p)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return ff, nil, nil, nil, nil
	default:
		return nil, nil, nil, nil, fmt.Errorf("mdm: unknown backend %v", cfg.Backend)
	}
}

func newSimulation(cfg Config, sys *md.System, step int, in *fault.Injector) (*Simulation, error) {
	p, err := cfg.EwaldParams()
	if err != nil {
		return nil, err
	}
	ff, machine, resilient, injector, err := newForceField(cfg, p, in)
	if err != nil {
		return nil, err
	}
	if resilient != nil {
		// Align the recovery layer's step clock with the simulation step so
		// step-keyed fault events land where the scenario says.
		resilient.SetStep(step)
	}
	it, err := md.NewIntegrator(sys, ff, cfg.Dt)
	if err != nil {
		return nil, err
	}
	it.SetStepCount(step)
	obs, err := core.NewReference(p)
	if err != nil {
		return nil, err
	}
	sim := &Simulation{
		cfg:        cfg,
		p:          p,
		System:     sys,
		Integrator: it,
		Recorder:   &md.Recorder{},
		machine:    machine,
		resilient:  resilient,
		injector:   injector,
		obs:        obs,
	}
	sim.Recorder.Sample(it)
	return sim, nil
}

// NewSimulation builds the crystal, assigns Maxwell–Boltzmann velocities and
// initializes the selected force engine.
func NewSimulation(cfg Config) (*Simulation, error) {
	cfg.fillDefaults()
	sys, err := md.NewRockSalt(cfg.Cells, cfg.Lattice)
	if err != nil {
		return nil, err
	}
	sys.SetMaxwellVelocities(cfg.Temperature, cfg.Seed)
	return newSimulation(cfg, sys, 0, nil)
}

// ResumeSimulation rebuilds a run from checkpointed state — the mdmsim
// restart path after a fatal fault. prev is freed; its fault injector (with
// already-fired events consumed, so a one-shot fatal does not refire) carries
// over to the resumed run, and step clocks are positioned at the checkpoint
// step so step-keyed events and the time axis line up.
func ResumeSimulation(prev *Simulation, sys *md.System, step int) (*Simulation, error) {
	in := prev.injector
	prevRep, hadRep := prev.FaultReport()
	if err := prev.Free(); err != nil {
		return nil, err
	}
	sim, err := newSimulation(prev.cfg, sys, step, in)
	if err != nil {
		return nil, err
	}
	if sim.resilient != nil && hadRep {
		// Recovery history survives the restart.
		sim.resilient.AdoptReport(prevRep)
	}
	return sim, nil
}

// Params returns the Ewald discretization in use.
func (s *Simulation) Params() ewald.Params { return s.p }

// N returns the particle count.
func (s *Simulation) N() int { return s.System.N() }

// RunNVT advances n steps with the velocity-scaling thermostat at the
// configured temperature (the first segment of the paper's §5 protocol),
// sampling observables after every step.
func (s *Simulation) RunNVT(n int) error {
	s.Integrator.Mode = md.NVT
	s.Integrator.Target = s.cfg.Temperature
	return s.Integrator.Run(n, func(int) error {
		s.Recorder.Sample(s.Integrator)
		return nil
	})
}

// RunNVE advances n steps at constant energy (the second segment of §5).
// The first NVE call after a thermostatted segment marks the start of the
// conservation measurement window used by EnergyDrift.
func (s *Simulation) RunNVE(n int) error {
	if s.Integrator.Mode != md.NVE {
		s.nveStart = len(s.Recorder.Records)
		// Sample the segment's starting energy before the first NVE step.
		s.Recorder.Sample(s.Integrator)
	}
	s.Integrator.Mode = md.NVE
	return s.Integrator.Run(n, func(int) error {
		s.Recorder.Sample(s.Integrator)
		return nil
	})
}

// Records returns all sampled observables.
func (s *Simulation) Records() []Record { return s.Recorder.Records }

// TemperatureStats returns the mean and standard deviation of the sampled
// temperature (the Figure 2 quantity).
func (s *Simulation) TemperatureStats() (mean, std float64) {
	return s.Recorder.TemperatureStats()
}

// EnergyDrift returns the maximum relative total-energy deviation over the
// latest NVE segment (the §5 conservation figure of merit; the thermostatted
// NVT segment changes the energy by design and is excluded).
func (s *Simulation) EnergyDrift() float64 {
	sub := md.Recorder{Records: s.Recorder.Records[s.nveStart:]}
	return sub.EnergyDrift()
}

// Pressure returns the instantaneous virial pressure in GPa, evaluated on
// the host in float64 (the machine backend likewise left observables to the
// host computer, §3.1).
func (s *Simulation) Pressure() (float64, error) {
	p, err := s.obs.Pressure(s.System)
	return p * units.EVPerA3ToGPa, err
}

// FaultReport returns the recovery audit trail when the run is under a
// fault scenario; ok is false otherwise.
func (s *Simulation) FaultReport() (rep FaultReport, ok bool) {
	if s.resilient == nil {
		return FaultReport{}, false
	}
	return s.resilient.Report(), true
}

// Free releases the simulated boards of the MDM backend (no-op for the
// reference backend).
func (s *Simulation) Free() error {
	if s.resilient != nil {
		return s.resilient.Free()
	}
	if s.machine == nil {
		return nil
	}
	return s.machine.Free()
}

// Table4 regenerates the paper's Table 4 at the paper's system size.
// See internal/perf for the model.
func Table4() ([]perf.Column, error) { return perf.Table4(perf.PaperN, perf.PaperL) }

// Table4At regenerates Table 4 for an arbitrary system.
func Table4At(n int, l float64) ([]perf.Column, error) { return perf.Table4(n, l) }

// Table5 regenerates the paper's Table 5.
func Table5() []perf.Table5Row { return perf.Table5() }
