// Package mdm is a software reproduction of the Molecular Dynamics Machine
// (MDM) of Narumi et al., "1.34 Tflops Molecular Dynamics Simulation for
// NaCl with a Special-Purpose Computer: MDM" (SC 2000).
//
// The MDM couples two special-purpose processors to a general-purpose host:
// WINE-2 evaluates the wavenumber-space part of the Ewald Coulomb sum on
// fixed-point DFT/IDFT pipelines, and MDGRAPE-2 evaluates the real-space
// Coulomb and van der Waals forces on single-precision pipelines with a
// table-driven arbitrary central-force unit. This package provides:
//
//   - bit-level simulators of both processors and their host libraries
//     (internal/wine2, internal/mdgrape2), coupled into an md.ForceField by
//     internal/core;
//   - a float64 "conventional computer" reference implementing the identical
//     physics (Ewald + Tosi–Fumi molten NaCl);
//   - the performance-accounting model that reproduces the paper's Table 4
//     and Table 5, including the 1.34 Tflops effective-speed headline;
//   - the Figure 2 temperature-fluctuation experiment and the comparison
//     methods of §6.3 (Barnes–Hut tree code, smooth particle-mesh Ewald).
//
// The exported surface wraps those pieces into a small simulation API: build
// a NaCl system with Config, run NVT/NVE segments, and read observables.
package mdm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"
	"time"

	"mdm/internal/core"
	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/mpi"
	"mdm/internal/perf"
	"mdm/internal/store"
	"mdm/internal/supervise"
	"mdm/internal/units"
)

// ErrInterrupted reports a run stopped by the interrupt check installed with
// SetInterrupt. The interrupted step is complete: its state is sampled and,
// when a journal is configured, committed, so the caller can checkpoint and
// later resume exactly where the run stopped.
var ErrInterrupted = errors.New("mdm: run interrupted")

// Backend selects which engine evaluates forces.
type Backend int

// The two engines of the reproduction.
const (
	// BackendMDM runs the simulated special-purpose machine: WINE-2
	// fixed-point pipelines + MDGRAPE-2 single-precision pipelines.
	BackendMDM Backend = iota
	// BackendReference runs the float64 conventional-computer path.
	BackendReference
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendMDM:
		return "MDM"
	case BackendReference:
		return "Reference"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Config describes one NaCl simulation. Zero values select the defaults
// noted on each field.
type Config struct {
	Cells       int     // rock-salt unit cells per side (default 2 → 64 ions)
	Lattice     float64 // lattice constant in Å (default 5.64, NaCl)
	Temperature float64 // initial/target temperature in K (default 1200, the paper's melt)
	Dt          float64 // time step in fs (default 2, as in §5)
	Alpha       float64 // Ewald splitting parameter (default: balanced for the box)
	Seed        int64   // velocity RNG seed (default 1)
	Backend     Backend // force engine (default BackendMDM)

	// PotentialEvery sets how often the host evaluates the potential
	// energy on the MDM backend (default 1; the paper used 100).
	PotentialEvery int

	// Faults is a fault-injection scenario in the internal/fault DSL, e.g.
	// "wine2:board-drop@step=100,board=2; mpi:drop@src=1,dst=0,n=3". When
	// non-empty (MDM backend only) the force path runs under the recovery
	// policy: transient faults are retried, dead boards re-striped, and the
	// run degrades to the reference path when hardware capacity is gone.
	// The schedule is deterministic: the same scenario yields the same
	// faults and the same FaultReport.
	Faults string

	// MaxRetries bounds per-step hardware retries under a fault scenario
	// (default 3; negative disables retries).
	MaxRetries int

	// Workers is the host worker-pool width the MDM backend uses to stripe
	// the simulated WINE-2/MDGRAPE-2 pipelines across OS threads (0 =
	// runtime.GOMAXPROCS(0), 1 = serial). Any width produces bit-identical
	// trajectories; the reference backend ignores it.
	Workers int

	// Pipeline overlaps the WINE-2 wavenumber pass with the MDGRAPE-2
	// real-space work of every step and fuses the four real-space table
	// passes into one cell-index sweep (MDM backend only). Trajectories are
	// bit-identical with the flag on or off at the same Skin.
	Pipeline bool

	// Skin is the Verlet skin in Å added to the real-space cell grid so the
	// sorted particle layout is reused across steps until a particle moves
	// more than Skin/2 (MDM backend only; 0 rebuilds every step). A non-zero
	// skin widens the cutoff-free 27-cell pair walk, so it selects a
	// different — equally energy-conserving — discretization.
	Skin float64

	// Ranks enables the §4 spatial decomposition on the MDM backend: the
	// simulation box is split into Ranks contiguous cell blocks, each owned
	// by one real-space process of an in-process MPI world, with WaveRanks
	// wavenumber processes running the WINE-2 library alongside (the paper
	// ran 16 + 8). Zero keeps the single-process machine. Ownership is
	// persistent across steps: particles migrate only when they cross a
	// domain face, and between neighbor-list rebuilds only ghost positions
	// move over the wire. With WaveRanks <= 1 trajectories are bit-identical
	// to the single-process machine at the same Skin; larger wavenumber
	// groups reorder the structure-factor reduction and agree to float64
	// rounding instead.
	Ranks int

	// WaveRanks is the number of wavenumber processes when Ranks > 0
	// (default 1). Ignored when Ranks is 0.
	WaveRanks int

	// Supervise enables long-run supervision on the MDM backend: a watchdog
	// over the simulated hardware, circuit breakers over boards and sites,
	// and a write-ahead step journal. The zero value disables all of it and
	// costs nothing on the force path.
	Supervise SuperviseConfig

	// fsys overrides the storage layer for checkpoint and journal I/O (nil =
	// the real filesystem). Unexported: only in-package tests inject the
	// fault filesystem; the public API never leaks internal/store types.
	fsys store.FS
}

// SetStoreFS routes the simulation's durable artifacts — journal segments
// and checkpoints — through an alternate storage layer; nil keeps the real
// filesystem. The serving daemon (internal/serve) injects its shared
// filesystem here so a whole fleet of sessions lives on one crash-testable
// store, and chaos suites inject store.FaultFS. The parameter type lives in
// an internal package on purpose: outside this module only the default OS
// filesystem is reachable, so the public Config surface stays closed.
func (c *Config) SetStoreFS(fsys store.FS) { c.fsys = fsys }

// storeFS resolves the storage layer checkpoints and journals write through.
func (c Config) storeFS() store.FS {
	if c.fsys == nil {
		return store.OS()
	}
	return c.fsys
}

// journalOptions resolves the journal's storage options.
func (c Config) journalOptions() supervise.Options {
	return supervise.Options{FS: c.storeFS(), SyncEvery: c.Supervise.SyncEvery}
}

// SuperviseConfig is the long-run supervision policy of a Simulation. The
// paper's production run held 2,304 ASICs busy for 36.5 hours (§6); at that
// scale silence is a failure mode of its own, so the supervision layer turns
// stalls into typed errors, repeated failures into quarantines, and makes
// every committed step durable.
type SuperviseConfig struct {
	// Watchdog is the stall deadline for a single hardware call (0 disables
	// the watchdog). A call silent for this long is interrupted and fed to
	// the recovery ladder as a retryable stall.
	Watchdog time.Duration

	// Journal is the path of the write-ahead step journal ("" disables
	// journaling). Every completed step is appended and fsynced before the
	// run moves on; ResumeFromJournal replays the tail over a checkpoint,
	// recovering a killed run at the exact committed step.
	Journal string

	// SyncEvery is the journal's group-commit interval: fsync after every
	// Nth step record (0 or 1 = every record, today's semantics; larger
	// values trade the durability of up to N-1 trailing steps for fewer
	// fsyncs on the step path). Checkpoints always flush.
	SyncEvery int

	// BreakerTrip, BreakerWindow and BreakerCooldown tune the circuit
	// breakers (0 = package defaults): a board or site failing BreakerTrip
	// times within BreakerWindow steps is opened — a board is quarantined by
	// re-striping, a site is served by the host path until a half-open probe
	// after BreakerCooldown steps succeeds.
	BreakerTrip     int
	BreakerWindow   int
	BreakerCooldown int
}

// enabled reports whether any supervision feature requiring the recovery
// layer is on (the journal alone works with the plain machine).
func (sc SuperviseConfig) enabled() bool {
	return sc.Watchdog > 0 || sc.BreakerTrip > 0 || sc.BreakerWindow > 0 || sc.BreakerCooldown > 0
}

func (c *Config) fillDefaults() {
	if c.Cells == 0 {
		c.Cells = 2
	}
	if c.Lattice == 0 {
		c.Lattice = 5.64
	}
	if c.Temperature == 0 {
		c.Temperature = 1200
	}
	if c.Dt == 0 {
		c.Dt = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PotentialEvery == 0 {
		c.PotentialEvery = 1
	}
}

// EwaldParams returns the discretization a Config resolves to.
func (c Config) EwaldParams() (ewald.Params, error) {
	c.fillDefaults()
	l := float64(c.Cells) * c.Lattice
	alpha := c.Alpha
	if alpha == 0 {
		// Balanced discretization bounded by the minimum-image constraint
		// of the reference oracle: r_cut <= 0.45 L.
		alpha = math.Max(ewald.SReal/0.45, ewald.ConventionalCost().OptimalAlpha(l, density(c)))
	}
	p := ewald.ParamsForAlpha(l, alpha)
	if p.RCut > l/2 {
		p.RCut = 0.45 * l
	}
	return p, p.Validate()
}

func density(c Config) float64 {
	l := float64(c.Cells) * c.Lattice
	n := float64(8 * c.Cells * c.Cells * c.Cells)
	return n / (l * l * l)
}

// Record is one observable sample (step, time in ps, temperature, energies).
type Record = md.Record

// FaultReport is the recovery audit trail of a run under fault injection:
// retry, re-stripe and fallback counts plus the event log. Deterministic for
// a given Config.Faults scenario.
type FaultReport = core.RunReport

// Simulation is a configured NaCl run.
type Simulation struct {
	cfg Config
	p   ewald.Params

	System     *md.System
	Integrator *md.Integrator
	Recorder   *md.Recorder

	machine   *core.Machine     // nil for the reference backend
	resilient *core.Resilient   // non-nil under a fault scenario or supervision
	prun      *core.ParallelRun // non-nil when Config.Ranks selects the decomposition
	injector  *fault.Injector   // the scenario's schedule; survives restarts
	obs       *core.Reference   // host-side observable evaluation (pressure)
	nveStart  int               // record index where the latest NVE segment began

	journal   *supervise.Journal // write-ahead step journal (nil when disabled)
	stage     string             // "nvt"/"nve": the running segment, tags journal records
	replaying bool               // journal replay in progress: suppress re-journaling
	interrupt func() bool        // graceful-shutdown check; survives restarts

	freeOnce sync.Once // Free is idempotent and safe to race with itself
	freeErr  error     // the first Free's verdict, replayed to later callers
}

// newForceField builds the configured engine. A non-nil injector (the
// restart path) takes precedence over parsing cfg.Faults again, so events
// that already fired before a restart stay consumed.
func newForceField(cfg Config, p ewald.Params, in *fault.Injector) (md.ForceField, *core.Machine, *core.Resilient, *core.ParallelRun, *fault.Injector, error) {
	switch cfg.Backend {
	case BackendMDM:
		mcfg := core.CurrentMachineConfig(p)
		mcfg.PotentialEvery = cfg.PotentialEvery
		mcfg.Workers = cfg.Workers
		mcfg.Pipeline = cfg.Pipeline
		mcfg.Skin = cfg.Skin
		if in == nil && cfg.Faults != "" {
			var err error
			in, err = fault.ParseInjector(cfg.Faults)
			if err != nil {
				return nil, nil, nil, nil, nil, fmt.Errorf("mdm: fault scenario: %w", err)
			}
		}
		var rc core.RecoveryConfig
		recovered := in != nil || cfg.Supervise.enabled()
		if recovered {
			rc = core.RecoveryConfig{
				MaxRetries: cfg.MaxRetries,
				Injector:   in,
			}
			if d := cfg.Supervise.Watchdog; d > 0 {
				rc.Watchdog = supervise.NewWatchdog(d)
			}
			if cfg.Supervise.enabled() {
				rc.Breakers = supervise.NewBreakerSet(supervise.BreakerConfig{
					Trip:     cfg.Supervise.BreakerTrip,
					Window:   cfg.Supervise.BreakerWindow,
					Cooldown: cfg.Supervise.BreakerCooldown,
				})
			}
		}
		if cfg.Ranks > 0 {
			nReal, nWave := cfg.Ranks, cfg.WaveRanks
			if nWave == 0 {
				nWave = 1
			}
			world, err := mpi.NewWorld(nReal + nWave)
			if err != nil {
				return nil, nil, nil, nil, nil, err
			}
			// The world's default 30 s deadline is sized for tests; a
			// legitimate 10^5-particle wavenumber pass runs longer than
			// that on one host core. A production session's stall
			// detection is the supervision watchdog, so the wire deadline
			// only has to catch a truly wedged run. Under a fault
			// scenario the tight default stays: drop scenarios rely on
			// the receiver noticing a swallowed message quickly.
			if in == nil {
				world.SetTimeout(time.Hour)
			}
			if recovered {
				res, err := core.NewResilientParallel(mcfg, rc, world, nReal, nWave)
				if err != nil {
					return nil, nil, nil, nil, nil, err
				}
				return res, nil, res, nil, in, nil
			}
			run, err := core.NewParallelRun(world, mcfg, nReal, nWave)
			if err != nil {
				return nil, nil, nil, nil, nil, err
			}
			return run, nil, nil, run, nil, nil
		}
		if recovered {
			res, err := core.NewResilient(mcfg, rc)
			if err != nil {
				return nil, nil, nil, nil, nil, err
			}
			return res, nil, res, nil, in, nil
		}
		machine, err := core.NewMachine(mcfg)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		return machine, machine, nil, nil, nil, nil
	case BackendReference:
		if cfg.Ranks > 0 {
			return nil, nil, nil, nil, nil, fmt.Errorf("mdm: the spatial decomposition requires the MDM backend")
		}
		ff, err := core.NewReference(p)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		return ff, nil, nil, nil, nil, nil
	default:
		return nil, nil, nil, nil, nil, fmt.Errorf("mdm: unknown backend %v", cfg.Backend)
	}
}

func newSimulation(cfg Config, sys *md.System, step int, in *fault.Injector) (*Simulation, error) {
	p, err := cfg.EwaldParams()
	if err != nil {
		return nil, err
	}
	ff, machine, resilient, prun, injector, err := newForceField(cfg, p, in)
	if err != nil {
		return nil, err
	}
	if resilient != nil {
		// Align the recovery layer's step clock with the simulation step so
		// step-keyed fault events land where the scenario says.
		resilient.SetStep(step)
	}
	it, err := md.NewIntegrator(sys, ff, cfg.Dt)
	if err != nil {
		return nil, err
	}
	it.SetStepCount(step)
	obs, err := core.NewReference(p)
	if err != nil {
		return nil, err
	}
	sim := &Simulation{
		cfg:        cfg,
		p:          p,
		System:     sys,
		Integrator: it,
		Recorder:   &md.Recorder{},
		machine:    machine,
		resilient:  resilient,
		prun:       prun,
		injector:   injector,
		obs:        obs,
	}
	sim.Recorder.Sample(it)
	return sim, nil
}

// NewSimulation builds the crystal, assigns Maxwell–Boltzmann velocities and
// initializes the selected force engine.
func NewSimulation(cfg Config) (*Simulation, error) {
	cfg.fillDefaults()
	sys, err := md.NewRockSalt(cfg.Cells, cfg.Lattice)
	if err != nil {
		return nil, err
	}
	sys.SetMaxwellVelocities(cfg.Temperature, cfg.Seed)
	sim, err := newSimulation(cfg, sys, 0, nil)
	if err != nil {
		return nil, err
	}
	if path := cfg.Supervise.Journal; path != "" {
		j, err := supervise.CreateJournalFS(path, cfg.journalOptions())
		if err != nil {
			_ = sim.Free()
			return nil, fmt.Errorf("mdm: journal: %w", err)
		}
		sim.journal = j
	}
	return sim, nil
}

// ResumeSimulation rebuilds a run from checkpointed state — the mdmsim
// restart path after a fatal fault. prev is freed; its fault injector (with
// already-fired events consumed, so a one-shot fatal does not refire) carries
// over to the resumed run, and step clocks are positioned at the checkpoint
// step so step-keyed events and the time axis line up.
func ResumeSimulation(prev *Simulation, sys *md.System, step int) (*Simulation, error) {
	in := prev.injector
	check := prev.interrupt
	jpath := ""
	if prev.journal != nil {
		jpath = prev.journal.Path()
	}
	prevRep, hadRep := prev.FaultReport()
	if err := prev.Free(); err != nil {
		return nil, err
	}
	sim, err := newSimulation(prev.cfg, sys, step, in)
	if err != nil {
		return nil, err
	}
	if sim.resilient != nil && hadRep {
		// Recovery history survives the restart.
		sim.resilient.AdoptReport(prevRep)
	}
	sim.interrupt = check
	if jpath != "" {
		// Rewind the journal to the checkpoint step: the restarted timeline
		// re-executes — and re-journals — everything after it.
		j, err := rewindJournal(prev.cfg, jpath, step)
		if err != nil {
			_ = sim.Free()
			return nil, err
		}
		sim.journal = j
	}
	return sim, nil
}

// rewindJournal truncates the active journal segment to records through step
// (atomically, discarding any torn trailing bytes a crash left behind) and
// reopens it for appending.
func rewindJournal(cfg Config, path string, step int) (*supervise.Journal, error) {
	if err := supervise.Rewind(cfg.storeFS(), path, step); err != nil {
		return nil, fmt.Errorf("mdm: journal: %w", err)
	}
	j, err := supervise.AppendJournalFS(path, cfg.journalOptions())
	if err != nil {
		return nil, fmt.Errorf("mdm: journal: %w", err)
	}
	return j, nil
}

// ResumeFromJournal rebuilds a run that was killed between checkpoints — the
// recovery path for a hard kill (power loss, OOM, SIGKILL). The recovery
// manager (store.Scan) inventories the run's artifacts, repairs crash debris
// (torn journal tails, stale atomic-replace temps), and picks the newest
// consistent checkpoint + journal-tail pair; the checkpoint restores the last
// durable state and the tail replays the steps that committed after it under
// the original ensemble schedule and fault timeline, yielding the exact
// pre-kill state bit for bit. cfg must be the original run's Config
// (including Supervise.Journal and Faults).
func ResumeFromJournal(cfg Config, ckptPath string) (*Simulation, error) {
	cfg.fillDefaults()
	if cfg.Supervise.Journal == "" {
		return nil, fmt.Errorf("mdm: ResumeFromJournal requires Config.Supervise.Journal")
	}
	fsys := cfg.storeFS()
	lay := store.Layout{Checkpoint: ckptPath, Journal: cfg.Supervise.Journal}
	inv, err := store.Scan(fsys, lay, storeValidators())
	if err != nil {
		return nil, fmt.Errorf("mdm: recovery scan: %w", err)
	}
	if len(inv.Artifacts) == 0 {
		// The run never made anything durable (killed before the first
		// directory fsync): nothing to resume, restarting from scratch loses
		// no committed progress.
		return nil, fmt.Errorf("mdm: resume %s: %w", ckptPath, store.ErrNoRunState)
	}
	// Unrecoverable state can look "clean" — journal records with no
	// checkpoint at all leave nothing torn or damaged — so the verdict
	// comes before the health check, not inside it.
	if inv.Unrecoverable() {
		return nil, fmt.Errorf("mdm: recovery scan: %w", unrecoverableCause(fsys, ckptPath, inv))
	}
	if !inv.Healthy() {
		// Crash debris is the expected shape after a kill: truncate torn
		// tails, drop stale temps, and take the post-repair verdict.
		if _, err := store.Repair(fsys, inv); err != nil {
			return nil, fmt.Errorf("mdm: recovery repair: %w", err)
		}
		if inv, err = store.Scan(fsys, lay, storeValidators()); err != nil {
			return nil, fmt.Errorf("mdm: recovery scan: %w", err)
		}
	}
	if inv.CheckpointStep < 0 {
		// Artifacts survived (a freshly created, still-empty journal) but
		// nothing is committed: no checkpoint, and — since the unrecoverable
		// verdict above didn't fire — no durable records either. Restarting
		// from scratch loses no committed progress.
		return nil, fmt.Errorf("mdm: resume %s: %w", ckptPath, store.ErrNoRunState)
	}
	// A checkpoint with no journal file at all (not even an empty active
	// segment) is not the layout a journaled run leaves behind — rotation
	// always materializes a fresh segment. Surface the absence as a typed
	// not-exist rather than silently resuming with an empty tail.
	hasSegment := false
	for _, a := range inv.Artifacts {
		if a.Kind == "segment" {
			hasSegment = true
			break
		}
	}
	if !hasSegment {
		return nil, fmt.Errorf("mdm: journal %s: %w",
			cfg.Supervise.Journal, &fs.PathError{Op: "open", Path: cfg.Supervise.Journal, Err: fs.ErrNotExist})
	}
	sys, step, err := md.ReadCheckpointFS(fsys, ckptPath)
	if err != nil {
		return nil, err
	}
	recs, err := supervise.ReadJournalFS(fsys, cfg.Supervise.Journal)
	if err != nil {
		return nil, fmt.Errorf("mdm: journal: %w", err)
	}
	// The replay tail is the contiguous run the scan certified. A committed
	// record past inv.ResumeStep means the journal holds a timeline disjoint
	// from the checkpoint's — a leftover from another incarnation of the run
	// directory. Discarding it would silently lose committed history, so the
	// directory is refused as stale instead.
	tail := make([]supervise.Record, 0, len(recs))
	var at *supervise.Record
	for i := range recs {
		switch {
		case recs[i].Step == step:
			at = &recs[i]
		case recs[i].Step > step && recs[i].Step <= inv.ResumeStep:
			tail = append(tail, recs[i])
		case recs[i].Step > inv.ResumeStep:
			return nil, fmt.Errorf("mdm: journal: committed step %d is unreachable from checkpoint step %d: %w",
				recs[i].Step, step, store.ErrStaleRunDir)
		}
	}
	for i := range tail {
		if tail[i].Step != step+i+1 {
			return nil, fmt.Errorf("mdm: journal: step %d follows checkpoint step %d non-contiguously: %w",
				tail[i].Step, step, store.ErrStaleRunDir)
		}
	}
	// Rebuild the fault schedule and consume the events the journal says had
	// fired by the checkpoint; events after it refire during replay exactly
	// as they did originally.
	var in *fault.Injector
	if cfg.Faults != "" {
		in, err = fault.ParseInjector(cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("mdm: fault scenario: %w", err)
		}
		if at != nil {
			in.Consume(at.Cursor)
		}
	}
	sim, err := newSimulation(cfg, sys, step, in)
	if err != nil {
		return nil, err
	}
	if sim.resilient != nil && at != nil && len(at.Payload) > 0 {
		var rep FaultReport
		if err := json.Unmarshal(at.Payload, &rep); err != nil {
			_ = sim.Free()
			return nil, fmt.Errorf("mdm: journal payload: %w", err)
		}
		sim.resilient.AdoptReport(rep)
	}
	// Reopen the journal for appending before the replay; the rewrite drops
	// any torn trailing bytes while keeping every committed record.
	lastStep := step
	if n := len(tail); n > 0 {
		lastStep = tail[n-1].Step
	}
	j, err := rewindJournal(cfg, cfg.Supervise.Journal, lastStep)
	if err != nil {
		_ = sim.Free()
		return nil, err
	}
	sim.journal = j
	// Replay the tail, grouped into runs of the journaled ensemble stages.
	// Journaling stays off: these records are already durable.
	sim.replaying = true
	for i := 0; i < len(tail); {
		k := i + 1
		for k < len(tail) && tail[k].Stage == tail[i].Stage {
			k++
		}
		run := sim.RunNVE
		if tail[i].Stage == "nvt" {
			run = sim.RunNVT
		}
		if err := run(k - i); err != nil {
			sim.replaying = false
			_ = sim.Free()
			return nil, fmt.Errorf("mdm: journal replay at step %d: %w", tail[i].Step, err)
		}
		i = k
	}
	sim.replaying = false
	return sim, nil
}

// unrecoverableCause turns an unrecoverable scan verdict into its typed
// cause: a damaged checkpoint surfaces the checkpoint reader's own error
// (ErrCheckpointCorrupt / ErrCheckpointTruncated / ErrCheckpointVersion from
// internal/md), and journal records stranded without a validating checkpoint
// surface store.ErrStaleRunDir — the directory holds history this run cannot
// splice onto. The serving layer maps the two to distinct HTTP statuses.
func unrecoverableCause(fsys store.FS, ckptPath string, inv *store.Inventory) error {
	for _, a := range inv.Artifacts {
		if a.Kind == "checkpoint" && a.Status != "ok" {
			if _, _, err := md.ReadCheckpointFS(fsys, ckptPath); err != nil {
				return err
			}
			break
		}
	}
	return fmt.Errorf("journal records with no validating checkpoint (damaged: %v): %w",
		inv.Damaged, store.ErrStaleRunDir)
}

// storeValidators wires the checkpoint and journal format knowledge into the
// recovery manager's scan.
func storeValidators() store.Validators {
	return store.Validators{
		CheckpointStep: md.CheckpointStep,
		ScanSegment:    supervise.ScanSegment,
	}
}

// WriteCheckpoint commits the simulation's current state to path with the
// atomic-replace discipline, then rotates the write-ahead journal and
// retires rotated segments the checkpoint made redundant — the journal stays
// bounded over a long campaign instead of growing one record per step
// forever. This is the durable commit point of a supervised run; mdmsim
// calls it at every -checkpoint-every boundary.
func (s *Simulation) WriteCheckpoint(path string) error {
	step := s.Integrator.StepCount()
	if err := md.WriteCheckpointFS(s.cfg.storeFS(), path, s.System, step); err != nil {
		return err
	}
	if s.journal != nil {
		if _, err := s.journal.Rotate(); err != nil {
			return fmt.Errorf("mdm: journal rotate: %w", err)
		}
		if _, err := supervise.CompactJournal(s.cfg.storeFS(), s.journal.Path(), step); err != nil {
			return fmt.Errorf("mdm: journal compact: %w", err)
		}
	}
	return nil
}

// Params returns the Ewald discretization in use.
func (s *Simulation) Params() ewald.Params { return s.p }

// N returns the particle count.
func (s *Simulation) N() int { return s.System.N() }

// RunNVT advances n steps with the velocity-scaling thermostat at the
// configured temperature (the first segment of the paper's §5 protocol),
// sampling observables after every step.
func (s *Simulation) RunNVT(n int) error {
	s.Integrator.Mode = md.NVT
	s.Integrator.Target = s.cfg.Temperature
	s.stage = "nvt"
	return s.Integrator.Run(n, s.observe)
}

// RunNVE advances n steps at constant energy (the second segment of §5).
// The first NVE call after a thermostatted segment marks the start of the
// conservation measurement window used by EnergyDrift.
func (s *Simulation) RunNVE(n int) error {
	if s.Integrator.Mode != md.NVE {
		s.nveStart = len(s.Recorder.Records)
		// Sample the segment's starting energy before the first NVE step.
		s.Recorder.Sample(s.Integrator)
	}
	s.Integrator.Mode = md.NVE
	s.stage = "nve"
	return s.Integrator.Run(n, s.observe)
}

// observe commits one completed step: journal first (the step is not durable
// until its record is fsynced), then sample, then honor a pending interrupt —
// so an interrupted run stops on a fully committed step.
func (s *Simulation) observe(int) error {
	if err := s.commitStep(); err != nil {
		return err
	}
	s.Recorder.Sample(s.Integrator)
	if s.interrupt != nil && s.interrupt() {
		return ErrInterrupted
	}
	return nil
}

// commitStep appends the just-completed step to the write-ahead journal.
func (s *Simulation) commitStep() error {
	if s.journal == nil || s.replaying {
		return nil
	}
	rec := supervise.Record{Step: s.Integrator.StepCount(), Stage: s.stage}
	if s.injector != nil {
		rec.Cursor = s.injector.Fired()
	}
	if s.resilient != nil {
		buf, err := json.Marshal(s.resilient.Report())
		if err != nil {
			return fmt.Errorf("mdm: journal payload: %w", err)
		}
		rec.Payload = buf
	}
	if err := s.journal.Append(rec); err != nil {
		return fmt.Errorf("mdm: journal: %w", err)
	}
	return nil
}

// SetInterrupt installs a check polled after every completed step; when it
// returns true the running segment stops with ErrInterrupted. The check
// survives ResumeSimulation restarts. mdmsim uses it to turn SIGINT/SIGTERM
// into a graceful shutdown: finish the step, flush the journal, checkpoint.
func (s *Simulation) SetInterrupt(check func() bool) { s.interrupt = check }

// Records returns all sampled observables.
func (s *Simulation) Records() []Record { return s.Recorder.Records }

// TemperatureStats returns the mean and standard deviation of the sampled
// temperature (the Figure 2 quantity).
func (s *Simulation) TemperatureStats() (mean, std float64) {
	return s.Recorder.TemperatureStats()
}

// EnergyDrift returns the maximum relative total-energy deviation over the
// latest NVE segment (the §5 conservation figure of merit; the thermostatted
// NVT segment changes the energy by design and is excluded).
func (s *Simulation) EnergyDrift() float64 {
	sub := md.Recorder{Records: s.Recorder.Records[s.nveStart:]}
	return sub.EnergyDrift()
}

// Pressure returns the instantaneous virial pressure in GPa, evaluated on
// the host in float64 (the machine backend likewise left observables to the
// host computer, §3.1).
func (s *Simulation) Pressure() (float64, error) {
	p, err := s.obs.Pressure(s.System)
	return p * units.EVPerA3ToGPa, err
}

// FaultReport returns the recovery audit trail when the run is under a
// fault scenario; ok is false otherwise.
func (s *Simulation) FaultReport() (rep FaultReport, ok bool) {
	if s.resilient == nil {
		return FaultReport{}, false
	}
	return s.resilient.Report(), true
}

// Free releases the simulated boards of the MDM backend (no-op for the
// reference backend) and closes the journal, making the last committed step
// its final record. Free is idempotent and safe for concurrent use: the
// serving layer's reaper may tear a session down while another goroutine is
// still holding the deferred Free of a completed run, and the loser of that
// race must observe the first call's verdict, not a double-close panic.
func (s *Simulation) Free() error {
	s.freeOnce.Do(func() { s.freeErr = s.free() })
	return s.freeErr
}

func (s *Simulation) free() error {
	jerr := s.journal.Close() // nil-safe
	s.journal = nil
	switch {
	case s.resilient != nil:
		return errors.Join(s.resilient.Free(), jerr)
	case s.prun != nil:
		return errors.Join(s.prun.Free(), jerr)
	case s.machine != nil:
		return errors.Join(s.machine.Free(), jerr)
	}
	return jerr
}

// Table4 regenerates the paper's Table 4 at the paper's system size.
// See internal/perf for the model.
func Table4() ([]perf.Column, error) { return perf.Table4(perf.PaperN, perf.PaperL) }

// Table4At regenerates Table 4 for an arbitrary system.
func Table4At(n int, l float64) ([]perf.Column, error) { return perf.Table4(n, l) }

// Table5 regenerates the paper's Table 5.
func Table5() []perf.Table5Row { return perf.Table5() }
